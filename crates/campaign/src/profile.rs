//! Offline aggregation of observability streams: `campaign profile`.
//!
//! Workers running with the recorder enabled (`campaign run --obs`,
//! `CAMPAIGN_OBS=1`) stream [`frlfi_obs`] events to
//! `<dir>/obs/worker-<id>.jsonl` — one file per worker, append-only,
//! flushed per committed trial. This module folds those streams back
//! into a per-worker, per-phase wall-clock profile: where did each
//! worker's time go (train / eval / aggregate / io), how fast are
//! trials completing, and — for an in-flight campaign — roughly when
//! will it finish.
//!
//! Loading follows the same torn-tail discipline as `trials.jsonl`
//! and `claims.jsonl`: a SIGKILLed worker may leave an unterminated
//! final line, which is silently dropped (it describes at most one
//! trial's already-re-runnable telemetry); a *complete* line that
//! fails to parse is skipped with a warning — or, under
//! [`CheckMode::Strict`] (`campaign profile --check`), a hard error
//! naming the file and line, which is how CI asserts every event a
//! worker emits conforms to the schema in [`frlfi_obs`]'s crate docs.

use std::collections::BTreeMap;
use std::path::Path;

use frlfi::report::Table;
use serde::Value;

use crate::fmt::json;

/// Subdirectory of a campaign directory holding per-worker event
/// streams (`worker-<id>.jsonl`).
pub const OBS_DIR: &str = "obs";

/// How [`load_dir`] treats a complete line that is not a valid event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckMode {
    /// Skip it with a warning (telemetry is advisory; a dropped event
    /// only blurs the profile).
    Lenient,
    /// Fail, naming the file and line — `campaign profile --check`.
    Strict,
}

/// One worker's folded telemetry.
#[derive(Debug, Clone, Default)]
pub struct WorkerProfile {
    /// Worker id (from the stream's `meta` events; falls back to the
    /// file name for a stream whose meta line was torn off).
    pub worker: String,
    /// Span totals: name → (count, total µs). `trial` spans carry the
    /// whole per-trial compute; `train` / `eval` partition it.
    pub spans: BTreeMap<String, (u64, u64)>,
    /// Timer totals: name → (count, total µs) — `aggregate`, `io`.
    pub timers: BTreeMap<String, (u64, u64)>,
    /// Counter totals: name → n.
    pub counters: BTreeMap<String, u64>,
    /// Merged histograms: name → power-of-two buckets
    /// ([`frlfi_obs::HIST_BUCKETS`] wide).
    pub hists: BTreeMap<String, Vec<u64>>,
    /// Exact histogram maxima: name → largest recorded value (v2
    /// streams; 0 for v1 streams, whose overflow bucket lost the
    /// tail).
    pub hist_max: BTreeMap<String, u64>,
    /// Earliest and latest event timestamps (ms since epoch; 0,0 when
    /// the stream had no events) — the worker's observed wall window.
    pub first_ts_ms: u64,
    /// See [`WorkerProfile::first_ts_ms`].
    pub last_ts_ms: u64,
    /// Event lines folded.
    pub events: u64,
}

impl WorkerProfile {
    fn note_ts(&mut self, ts: u64) {
        if ts == 0 {
            return;
        }
        if self.first_ts_ms == 0 || ts < self.first_ts_ms {
            self.first_ts_ms = ts;
        }
        self.last_ts_ms = self.last_ts_ms.max(ts);
    }

    /// Completed `trial` spans.
    pub fn trials(&self) -> u64 {
        self.spans.get("trial").map_or(0, |&(n, _)| n)
    }

    /// Total µs across `trial` spans.
    pub fn trial_us(&self) -> u64 {
        self.spans.get("trial").map_or(0, |&(_, us)| us)
    }

    /// The worker's observed wall window in seconds.
    pub fn window_s(&self) -> f64 {
        self.last_ts_ms.saturating_sub(self.first_ts_ms) as f64 / 1e3
    }
}

/// A campaign directory's folded telemetry: every worker stream under
/// `<dir>/obs/`, plus load diagnostics.
#[derive(Debug, Clone, Default)]
pub struct Profile {
    /// Per-worker profiles, sorted by worker id.
    pub workers: Vec<WorkerProfile>,
    /// Complete-but-unparseable lines skipped (lenient mode only).
    pub skipped_lines: usize,
    /// Unterminated trailing fragments dropped (one per stream a
    /// worker was killed mid-write in).
    pub torn_tails: usize,
}

impl Profile {
    /// Total events across all workers.
    pub fn events(&self) -> u64 {
        self.workers.iter().map(|w| w.events).sum()
    }

    /// Distinct trials observed across workers. Trial spans are
    /// counted per worker and summed — a reaped trial finished by two
    /// workers counts twice, which is correct for *throughput* (both
    /// workers spent the time).
    pub fn trials(&self) -> u64 {
        self.workers.iter().map(|w| w.trials()).sum()
    }

    /// Campaign-level wall window (s): earliest to latest event across
    /// all workers.
    pub fn window_s(&self) -> f64 {
        let first =
            self.workers.iter().map(|w| w.first_ts_ms).filter(|&t| t > 0).min().unwrap_or(0);
        let last = self.workers.iter().map(|w| w.last_ts_ms).max().unwrap_or(0);
        last.saturating_sub(first) as f64 / 1e3
    }

    /// Observed completion rate (trials/s) over the campaign window.
    /// `None` until the window is wide enough to divide by.
    pub fn rate(&self) -> Option<f64> {
        let w = self.window_s();
        (w > 1e-3 && self.trials() > 0).then(|| self.trials() as f64 / w)
    }

    /// Counter totals summed across workers.
    pub fn counter_totals(&self) -> BTreeMap<String, u64> {
        let mut out = BTreeMap::new();
        for w in &self.workers {
            for (name, &n) in &w.counters {
                *out.entry(name.clone()).or_insert(0) += n;
            }
        }
        out
    }

    /// Histograms merged across workers.
    pub fn hist_totals(&self) -> BTreeMap<String, Vec<u64>> {
        let mut out: BTreeMap<String, Vec<u64>> = BTreeMap::new();
        for w in &self.workers {
            for (name, buckets) in &w.hists {
                let acc = out.entry(name.clone()).or_insert_with(|| vec![0; buckets.len()]);
                if acc.len() < buckets.len() {
                    acc.resize(buckets.len(), 0);
                }
                for (a, &b) in acc.iter_mut().zip(buckets) {
                    *a += b;
                }
            }
        }
        out
    }

    /// Exact histogram maxima merged across workers (0 for a
    /// histogram only ever seen in v1 streams).
    pub fn hist_max_totals(&self) -> BTreeMap<String, u64> {
        let mut out: BTreeMap<String, u64> = BTreeMap::new();
        for w in &self.workers {
            for (name, &m) in &w.hist_max {
                let e = out.entry(name.clone()).or_insert(0);
                *e = (*e).max(m);
            }
        }
        out
    }
}

/// The value range a power-of-two bucket covers: bucket 0 holds
/// zeros, bucket `b ≥ 1` holds `[2^(b-1), 2^b)`, and the final bucket
/// is capped by the exact `max` when one was recorded (v2 streams) —
/// a v1 overflow bucket degenerates to its floor.
fn bucket_bounds(b: usize, nbuckets: usize, max: u64) -> (u64, u64) {
    if b == 0 {
        return (0, 0);
    }
    let lo = 1u64 << (b - 1);
    let mut hi = if b + 1 == nbuckets { max } else { 1u64 << b };
    if max >= lo {
        hi = hi.min(max);
    }
    (lo, hi.max(lo))
}

/// The `q`-quantile (`0.0..=1.0`) of a merged power-of-two histogram,
/// linearly interpolated inside the containing bucket. `max` is the
/// exact recorded maximum (caps the overflow bucket; pass 0 for v1
/// streams that never recorded one). Returns 0 for an empty
/// histogram.
pub fn hist_percentile(buckets: &[u64], max: u64, q: f64) -> f64 {
    let total: u64 = buckets.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let rank = q.clamp(0.0, 1.0) * total as f64;
    let mut cum = 0u64;
    for (b, &n) in buckets.iter().enumerate() {
        if n == 0 {
            continue;
        }
        let next = cum + n;
        if next as f64 >= rank {
            let (lo, hi) = bucket_bounds(b, buckets.len(), max);
            let frac = ((rank - cum as f64) / n as f64).clamp(0.0, 1.0);
            return lo as f64 + frac * (hi - lo) as f64;
        }
        cum = next;
    }
    // Rounding pushed the rank past the last occupied bucket: its
    // upper bound is the answer.
    let last = buckets.iter().rposition(|&n| n > 0).unwrap_or(0);
    bucket_bounds(last, buckets.len(), max).1 as f64
}

/// Validates one parsed event against the schema in the
/// [`frlfi_obs`] crate docs and folds it into `w`.
fn fold_event(w: &mut WorkerProfile, v: &Value) -> Result<(), String> {
    let version = v.get("v").and_then(Value::as_int).ok_or("event missing integer `v`")?;
    if !(1..=frlfi_obs::SCHEMA_VERSION as i64).contains(&version) {
        return Err(format!("unsupported event version {version}"));
    }
    let v2 = version >= 2;
    let kind = v.get("kind").and_then(Value::as_str).ok_or("event missing string `kind`")?;
    let ts = v.get("ts_ms").and_then(Value::as_int).ok_or("event missing integer `ts_ms`")?;
    if ts < 0 {
        return Err("negative `ts_ms`".into());
    }
    w.note_ts(ts as u64);
    let int = |k: &str| {
        v.get(k)
            .and_then(Value::as_int)
            .filter(|&n| n >= 0)
            .map(|n| n as u64)
            .ok_or_else(|| format!("`{kind}` event missing non-negative integer `{k}`"))
    };
    // v2-only fields: required on v2 events, absent on v1 events; a
    // present-but-malformed value is an error at either version.
    let opt_int = |k: &str| match v.get(k) {
        None => Ok(None),
        Some(val) => val
            .as_int()
            .filter(|&n| n >= 0)
            .map(|n| Some(n as u64))
            .ok_or_else(|| format!("`{kind}` has non-integer `{k}`")),
    };
    let v2_int = |k: &str| {
        let got = opt_int(k)?;
        if v2 && got.is_none() {
            return Err(format!("v2 `{kind}` event missing integer `{k}`"));
        }
        Ok(got)
    };
    let name = || {
        v.get("name")
            .and_then(Value::as_str)
            .map(str::to_owned)
            .ok_or_else(|| format!("`{kind}` event missing string `name`"))
    };
    match kind {
        "meta" => {
            let worker = v
                .get("worker")
                .and_then(Value::as_str)
                .ok_or("`meta` event missing string `worker`")?;
            int("pid")?;
            v2_int("mono_us")?;
            // Re-installs append to the same stream; ids must agree.
            if w.worker.is_empty() {
                w.worker = worker.to_owned();
            } else if w.worker != worker {
                return Err(format!(
                    "stream mixes workers `{}` and `{worker}` — copied obs files?",
                    w.worker
                ));
            }
        }
        "span" => {
            let dur = int("dur_us")?;
            if let Some(t) = v.get("trial") {
                t.as_int().filter(|&n| n >= 0).ok_or("`span` has non-integer `trial`")?;
            }
            v2_int("id")?;
            v2_int("tid")?;
            v2_int("mono_us")?;
            opt_int("parent")?;
            let e = w.spans.entry(name()?).or_insert((0, 0));
            e.0 += 1;
            e.1 += dur;
        }
        "timer" => {
            let (n, total) = (int("n")?, int("total_us")?);
            v2_int("tid")?;
            opt_int("parent")?;
            let e = w.timers.entry(name()?).or_insert((0, 0));
            e.0 += n;
            e.1 += total;
        }
        "count" => {
            v2_int("tid")?;
            *w.counters.entry(name()?).or_insert(0) += int("n")?;
        }
        "hist" => {
            let buckets = v
                .get("buckets")
                .and_then(Value::as_array)
                .ok_or("`hist` event missing array `buckets`")?;
            if buckets.len() != frlfi_obs::HIST_BUCKETS {
                return Err(format!(
                    "`hist` has {} buckets, expected {}",
                    buckets.len(),
                    frlfi_obs::HIST_BUCKETS
                ));
            }
            v2_int("tid")?;
            let max = v2_int("max")?.unwrap_or(0);
            let name = name()?;
            let acc = w.hists.entry(name.clone()).or_insert_with(|| vec![0; buckets.len()]);
            for (a, b) in acc.iter_mut().zip(buckets) {
                *a += b
                    .as_int()
                    .filter(|&n| n >= 0)
                    .ok_or("`hist` bucket is not a non-negative integer")?
                    as u64;
            }
            let m = w.hist_max.entry(name).or_insert(0);
            *m = (*m).max(max);
        }
        "log" => {
            v.get("level").and_then(Value::as_str).ok_or("`log` event missing string `level`")?;
            v.get("msg").and_then(Value::as_str).ok_or("`log` event missing string `msg`")?;
            v2_int("tid")?;
        }
        other => return Err(format!("unknown event kind `{other}`")),
    }
    w.events += 1;
    Ok(())
}

/// Folds one worker stream. The final piece, if unterminated, is a
/// torn tail from a killed writer and is dropped in either mode — a
/// write that never completed is not an event.
fn load_stream(
    path: &Path,
    mode: CheckMode,
    profile: &mut Profile,
) -> Result<WorkerProfile, String> {
    let text = crate::io::with_retry("obs.read", || crate::io::read_to_string("obs.read", path))
        .map_err(|e| format!("read {}: {e}", path.display()))?;
    let mut w = WorkerProfile::default();
    let pieces: Vec<&str> = text.split_inclusive('\n').collect();
    for (i, piece) in pieces.iter().enumerate() {
        if !piece.ends_with('\n') {
            profile.torn_tails += 1;
            break;
        }
        let line = piece.trim();
        if line.is_empty() {
            continue;
        }
        let folded =
            json::parse(line).map_err(|e| e.to_string()).and_then(|v| fold_event(&mut w, &v));
        if let Err(e) = folded {
            match mode {
                CheckMode::Strict => {
                    return Err(format!("{} line {}: {e}", path.display(), i + 1));
                }
                CheckMode::Lenient => {
                    frlfi_obs::warn!(
                        "{} line {}: {e}; skipping event (telemetry only — campaign \
                         results are unaffected)",
                        path.display(),
                        i + 1
                    );
                    profile.skipped_lines += 1;
                }
            }
        }
    }
    if w.worker.is_empty() {
        // Meta line lost (torn off or skipped): fall back to the
        // `worker-<id>.jsonl` naming contract.
        w.worker = path
            .file_stem()
            .and_then(|s| s.to_str())
            .map(|s| s.strip_prefix("worker-").unwrap_or(s).to_owned())
            .unwrap_or_else(|| path.display().to_string());
    }
    Ok(w)
}

/// Loads every `obs/worker-*.jsonl` stream under campaign directory
/// `dir`. A campaign that never ran with `--obs` yields an empty
/// profile (no error: telemetry is opt-in).
///
/// # Errors
///
/// I/O failures; plus, under [`CheckMode::Strict`], the first
/// schema-invalid complete line.
pub fn load_dir(dir: &Path, mode: CheckMode) -> Result<Profile, String> {
    let obs_dir = dir.join(OBS_DIR);
    let mut profile = Profile::default();
    let entries = match std::fs::read_dir(&obs_dir) {
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(profile),
        Err(e) => return Err(format!("read {}: {e}", obs_dir.display())),
        Ok(entries) => entries,
    };
    let mut paths: Vec<_> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            p.extension().is_some_and(|x| x == "jsonl")
                && p.file_name().and_then(|n| n.to_str()).is_some_and(|n| n.starts_with("worker-"))
        })
        .collect();
    paths.sort();
    for path in paths {
        let w = load_stream(&path, mode, &mut profile)?;
        profile.workers.push(w);
    }
    profile.workers.sort_by(|a, b| a.worker.cmp(&b.worker));
    Ok(profile)
}

/// Renders the per-worker, per-phase wall-clock table: one row per
/// worker plus a `total` row; phase columns in seconds, completed
/// trials, and each worker's observed completion rate.
pub fn render_profile_table(profile: &Profile) -> Table {
    let columns = ["trials", "trial s", "train s", "eval s", "agg s", "io s", "trial/s"]
        .map(String::from)
        .to_vec();
    let mut table =
        Table::new("Campaign profile: wall-clock by phase", "worker", columns).with_precision(2);
    let s = |us: u64| us as f64 / 1e6;
    let row = |w: &WorkerProfile| {
        let trials = w.trials();
        let span_s = |name: &str| s(w.spans.get(name).map_or(0, |&(_, us)| us));
        let timer_s = |name: &str| s(w.timers.get(name).map_or(0, |&(_, us)| us));
        let window = w.window_s();
        let rate = if window > 1e-3 { trials as f64 / window } else { 0.0 };
        vec![
            trials as f64,
            s(w.trial_us()),
            span_s("train"),
            span_s("eval"),
            timer_s("aggregate"),
            timer_s("io"),
            rate,
        ]
    };
    let mut total = vec![0.0; 7];
    for w in &profile.workers {
        let r = row(w);
        for (t, v) in total.iter_mut().zip(&r) {
            *t += v;
        }
        table.push_row(w.worker.clone(), r);
    }
    if profile.workers.len() > 1 {
        // The total rate column sums per-worker rates: with N workers
        // active concurrently that *is* the fleet's aggregate rate.
        table.push_row("total", total);
    }
    table
}

/// Renders the full `campaign profile` report: the phase table,
/// counter totals, merged histograms, the observed completion rate
/// and — when the campaign is still incomplete — an ETA extrapolated
/// from that rate.
///
/// `remaining_trials` comes from the trial log (None when the
/// campaign state could not be read, e.g. profiling a copied `obs/`
/// directory alone).
pub fn render_report(profile: &Profile, remaining_trials: Option<usize>) -> String {
    let mut out = render_profile_table(profile).render();
    let totals = profile.counter_totals();
    if !totals.is_empty() {
        out.push_str("\ncounters\n");
        for (name, n) in &totals {
            out.push_str(&format!("  {name:<28} {n}\n"));
        }
    }
    let maxes = profile.hist_max_totals();
    for (name, buckets) in profile.hist_totals() {
        out.push_str(&format!("histogram {name} (power-of-two buckets)\n"));
        // Trim trailing empty buckets; label each as its range floor.
        let used = buckets.iter().rposition(|&n| n > 0).map_or(0, |i| i + 1);
        for (b, &n) in buckets.iter().take(used).enumerate() {
            if n > 0 {
                let floor = if b == 0 { 0 } else { 1u64 << (b - 1) };
                out.push_str(&format!("  >= {floor:<6} {n}\n"));
            }
        }
        let max = maxes.get(&name).copied().unwrap_or(0);
        let p = |q| hist_percentile(&buckets, max, q);
        out.push_str(&format!(
            "  p50={:.1} p90={:.1} p99={:.1} max={}\n",
            p(0.50),
            p(0.90),
            p(0.99),
            if max > 0 { max.to_string() } else { "?".to_string() },
        ));
    }
    match profile.rate() {
        Some(rate) => {
            out.push_str(&format!(
                "observed: {} trials over {:.1} s wall ({rate:.2} trials/s)\n",
                profile.trials(),
                profile.window_s(),
            ));
            if let Some(remaining) = remaining_trials {
                if remaining > 0 {
                    out.push_str(&format!(
                        "eta: ~{:.0} s for {remaining} remaining trials at the observed rate\n",
                        remaining as f64 / rate
                    ));
                } else {
                    out.push_str("campaign complete\n");
                }
            }
        }
        None => out.push_str("observed: no trial spans yet\n"),
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_stream(dir: &Path, name: &str, lines: &str) {
        let obs = dir.join(OBS_DIR);
        std::fs::create_dir_all(&obs).unwrap();
        std::fs::write(obs.join(name), lines).unwrap();
    }

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("frlfi-profile-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    const STREAM: &str = concat!(
        r#"{"v":1,"kind":"meta","worker":"w0","pid":7,"ts_ms":1000}"#,
        "\n",
        r#"{"v":1,"kind":"span","name":"train","dur_us":1500,"ts_ms":1400}"#,
        "\n",
        r#"{"v":1,"kind":"span","name":"trial","trial":3,"dur_us":2000,"ts_ms":1500}"#,
        "\n",
        r#"{"v":1,"kind":"timer","name":"io","n":2,"total_us":300,"ts_ms":1600}"#,
        "\n",
        r#"{"v":1,"kind":"count","name":"nn.dispatch.reference","n":40,"ts_ms":1600}"#,
        "\n",
    );

    #[test]
    fn folds_a_stream_and_renders() {
        let dir = tmpdir("fold");
        write_stream(&dir, "worker-w0.jsonl", STREAM);
        let p = load_dir(&dir, CheckMode::Strict).unwrap();
        assert_eq!(p.workers.len(), 1);
        let w = &p.workers[0];
        assert_eq!(w.worker, "w0");
        assert_eq!(w.trials(), 1);
        assert_eq!(w.trial_us(), 2000);
        assert_eq!(w.spans["train"], (1, 1500));
        assert_eq!(w.timers["io"], (2, 300));
        assert_eq!(w.counters["nn.dispatch.reference"], 40);
        assert_eq!((w.first_ts_ms, w.last_ts_ms), (1000, 1600));
        let report = render_report(&p, Some(5));
        assert!(report.contains("w0"));
        assert!(report.contains("nn.dispatch.reference"));
        assert!(report.contains("eta:"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_dropped_interior_garbage_skipped_leniently() {
        let dir = tmpdir("torn");
        let mut text = String::from(STREAM);
        text.insert_str(0, "{not json}\n");
        text.push_str(r#"{"v":1,"kind":"count","name":"x","#); // torn tail
        write_stream(&dir, "worker-w0.jsonl", &text);
        let p = load_dir(&dir, CheckMode::Lenient).unwrap();
        assert_eq!(p.skipped_lines, 1);
        assert_eq!(p.torn_tails, 1);
        assert_eq!(p.workers[0].trials(), 1);
        // Strict mode rejects the interior garbage but still tolerates
        // the torn tail: SIGKILL mid-write must not fail `--check`.
        let err = load_dir(&dir, CheckMode::Strict).unwrap_err();
        assert!(err.contains("line 1"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn strict_tolerates_pure_torn_tail() {
        let dir = tmpdir("strict-tail");
        let mut text = String::from(STREAM);
        text.push_str(r#"{"v":1,"kind":"span"#);
        write_stream(&dir, "worker-w0.jsonl", &text);
        let p = load_dir(&dir, CheckMode::Strict).unwrap();
        assert_eq!(p.torn_tails, 1);
        assert_eq!(p.workers[0].events, 5);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_obs_dir_is_empty_profile() {
        let dir = tmpdir("empty");
        let p = load_dir(&dir, CheckMode::Strict).unwrap();
        assert!(p.workers.is_empty());
        assert_eq!(p.events(), 0);
        assert!(p.rate().is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn schema_violations_are_named() {
        let dir = tmpdir("schema");
        for (tag, line) in [
            ("version", r#"{"v":3,"kind":"count","name":"x","n":1,"ts_ms":1}"#),
            ("kind", r#"{"v":1,"kind":"mystery","ts_ms":1}"#),
            ("buckets", r#"{"v":1,"kind":"hist","name":"h","buckets":[1,2],"ts_ms":1}"#),
            ("field", r#"{"v":1,"kind":"span","name":"trial","ts_ms":1}"#),
            (
                "v2 span id",
                r#"{"v":2,"kind":"span","name":"t","dur_us":1,"tid":1,"mono_us":1,"ts_ms":1}"#,
            ),
            (
                "v2 hist max",
                &format!(
                    r#"{{"v":2,"kind":"hist","name":"h","buckets":[{}],"tid":1,"ts_ms":1}}"#,
                    vec!["0"; frlfi_obs::HIST_BUCKETS].join(",")
                ),
            ),
            ("v2 count tid", r#"{"v":2,"kind":"count","name":"x","n":1,"ts_ms":1}"#),
        ] {
            write_stream(&dir, "worker-w0.jsonl", &format!("{line}\n"));
            assert!(
                load_dir(&dir, CheckMode::Strict).is_err(),
                "strict mode must reject {tag}: {line}"
            );
            let p = load_dir(&dir, CheckMode::Lenient).unwrap();
            assert_eq!(p.skipped_lines, 1, "lenient mode must skip {tag}");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    const STREAM_V2: &str = concat!(
        r#"{"v":2,"kind":"meta","worker":"w1","pid":8,"ts_ms":2000,"mono_us":50}"#,
        "\n",
        r#"{"v":2,"kind":"span","name":"trial","trial":4,"dur_us":900,"ts_ms":2100,"id":7,"tid":1,"mono_us":100}"#,
        "\n",
        r#"{"v":2,"kind":"span","name":"train","dur_us":600,"ts_ms":2050,"id":8,"parent":7,"tid":1,"mono_us":120}"#,
        "\n",
        r#"{"v":2,"kind":"timer","name":"io","n":3,"total_us":90,"ts_ms":2100,"tid":1,"parent":7}"#,
        "\n",
        r#"{"v":2,"kind":"count","name":"x","n":5,"ts_ms":2100,"tid":1}"#,
        "\n",
    );

    #[test]
    fn v1_and_v2_streams_mix_in_one_directory() {
        let dir = tmpdir("mixed");
        write_stream(&dir, "worker-w0.jsonl", STREAM);
        write_stream(&dir, "worker-w1.jsonl", STREAM_V2);
        let p = load_dir(&dir, CheckMode::Strict).unwrap();
        assert_eq!(p.workers.len(), 2);
        assert_eq!(p.trials(), 2);
        assert_eq!(p.workers[1].worker, "w1");
        assert_eq!(p.workers[1].spans["train"], (1, 600));
        assert_eq!(p.workers[1].timers["io"], (3, 90));
        assert_eq!(p.skipped_lines, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn v2_hist_max_survives_the_overflow_bucket() {
        let dir = tmpdir("histmax");
        let mut buckets = [0u64; frlfi_obs::HIST_BUCKETS];
        buckets[frlfi_obs::HIST_BUCKETS - 1] = 3; // deep overflow
        let line = format!(
            r#"{{"v":2,"kind":"hist","name":"h","buckets":[{}],"max":123456789,"tid":1,"ts_ms":1}}"#,
            buckets.iter().map(u64::to_string).collect::<Vec<_>>().join(",")
        );
        write_stream(&dir, "worker-w0.jsonl", &format!("{line}\n"));
        let p = load_dir(&dir, CheckMode::Strict).unwrap();
        assert_eq!(p.hist_max_totals()["h"], 123_456_789);
        // The overflow bucket's percentile is capped by the exact max,
        // not the (lost) power-of-two ceiling.
        let h = &p.hist_totals()["h"];
        assert!(hist_percentile(h, 123_456_789, 0.99) <= 123_456_789.0);
        let report = render_report(&p, None);
        assert!(report.contains("max=123456789"), "{report}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn percentiles_interpolate_within_buckets() {
        // 10 zeros: every percentile is 0.
        let mut b = vec![0u64; frlfi_obs::HIST_BUCKETS];
        b[0] = 10;
        assert_eq!(hist_percentile(&b, 0, 0.5), 0.0);
        // 100 values in [8, 16): p50 lands mid-bucket.
        let mut b = vec![0u64; frlfi_obs::HIST_BUCKETS];
        b[4] = 100;
        let p50 = hist_percentile(&b, 15, 0.5);
        assert!((8.0..=15.0).contains(&p50), "{p50}");
        // Half in [1,2), half in [8,16): p90 must sit in the upper
        // bucket, p50 at its boundary or below.
        let mut b = vec![0u64; frlfi_obs::HIST_BUCKETS];
        b[1] = 50;
        b[4] = 50;
        assert!(hist_percentile(&b, 12, 0.9) >= 8.0);
        assert!(hist_percentile(&b, 12, 0.25) < 2.0);
        // Empty histogram.
        assert_eq!(hist_percentile(&[0u64; frlfi_obs::HIST_BUCKETS], 0, 0.9), 0.0);
    }

    #[test]
    fn merges_hists_and_counters_across_workers() {
        let dir = tmpdir("merge");
        let hist_line = |n: u64| {
            let mut buckets = [0u64; frlfi_obs::HIST_BUCKETS];
            buckets[3] = n;
            format!(
                r#"{{"v":1,"kind":"hist","name":"nn.batch_size","buckets":[{}],"ts_ms":1}}"#,
                buckets.iter().map(u64::to_string).collect::<Vec<_>>().join(",")
            )
        };
        write_stream(&dir, "worker-a.jsonl", &format!("{}\n", hist_line(2)));
        write_stream(&dir, "worker-b.jsonl", &format!("{}\n", hist_line(5)));
        let p = load_dir(&dir, CheckMode::Strict).unwrap();
        assert_eq!(p.workers.len(), 2);
        assert_eq!(p.hist_totals()["nn.batch_size"][3], 7);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
