//! Offline aggregation of observability streams: `campaign profile`.
//!
//! Workers running with the recorder enabled (`campaign run --obs`,
//! `CAMPAIGN_OBS=1`) stream [`frlfi_obs`] events to
//! `<dir>/obs/worker-<id>.jsonl` — one file per worker, append-only,
//! flushed per committed trial. This module folds those streams back
//! into a per-worker, per-phase wall-clock profile: where did each
//! worker's time go (train / eval / aggregate / io), how fast are
//! trials completing, and — for an in-flight campaign — roughly when
//! will it finish.
//!
//! Loading follows the same torn-tail discipline as `trials.jsonl`
//! and `claims.jsonl`: a SIGKILLed worker may leave an unterminated
//! final line, which is silently dropped (it describes at most one
//! trial's already-re-runnable telemetry); a *complete* line that
//! fails to parse is skipped with a warning — or, under
//! [`CheckMode::Strict`] (`campaign profile --check`), a hard error
//! naming the file and line, which is how CI asserts every event a
//! worker emits conforms to the schema in [`frlfi_obs`]'s crate docs.

use std::collections::BTreeMap;
use std::path::Path;

use frlfi::report::Table;
use serde::Value;

use crate::fmt::json;

/// Subdirectory of a campaign directory holding per-worker event
/// streams (`worker-<id>.jsonl`).
pub const OBS_DIR: &str = "obs";

/// How [`load_dir`] treats a complete line that is not a valid event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckMode {
    /// Skip it with a warning (telemetry is advisory; a dropped event
    /// only blurs the profile).
    Lenient,
    /// Fail, naming the file and line — `campaign profile --check`.
    Strict,
}

/// One worker's folded telemetry.
#[derive(Debug, Clone, Default)]
pub struct WorkerProfile {
    /// Worker id (from the stream's `meta` events; falls back to the
    /// file name for a stream whose meta line was torn off).
    pub worker: String,
    /// Span totals: name → (count, total µs). `trial` spans carry the
    /// whole per-trial compute; `train` / `eval` partition it.
    pub spans: BTreeMap<String, (u64, u64)>,
    /// Timer totals: name → (count, total µs) — `aggregate`, `io`.
    pub timers: BTreeMap<String, (u64, u64)>,
    /// Counter totals: name → n.
    pub counters: BTreeMap<String, u64>,
    /// Merged histograms: name → power-of-two buckets
    /// ([`frlfi_obs::HIST_BUCKETS`] wide).
    pub hists: BTreeMap<String, Vec<u64>>,
    /// Earliest and latest event timestamps (ms since epoch; 0,0 when
    /// the stream had no events) — the worker's observed wall window.
    pub first_ts_ms: u64,
    /// See [`WorkerProfile::first_ts_ms`].
    pub last_ts_ms: u64,
    /// Event lines folded.
    pub events: u64,
}

impl WorkerProfile {
    fn note_ts(&mut self, ts: u64) {
        if ts == 0 {
            return;
        }
        if self.first_ts_ms == 0 || ts < self.first_ts_ms {
            self.first_ts_ms = ts;
        }
        self.last_ts_ms = self.last_ts_ms.max(ts);
    }

    /// Completed `trial` spans.
    pub fn trials(&self) -> u64 {
        self.spans.get("trial").map_or(0, |&(n, _)| n)
    }

    /// Total µs across `trial` spans.
    pub fn trial_us(&self) -> u64 {
        self.spans.get("trial").map_or(0, |&(_, us)| us)
    }

    /// The worker's observed wall window in seconds.
    pub fn window_s(&self) -> f64 {
        self.last_ts_ms.saturating_sub(self.first_ts_ms) as f64 / 1e3
    }
}

/// A campaign directory's folded telemetry: every worker stream under
/// `<dir>/obs/`, plus load diagnostics.
#[derive(Debug, Clone, Default)]
pub struct Profile {
    /// Per-worker profiles, sorted by worker id.
    pub workers: Vec<WorkerProfile>,
    /// Complete-but-unparseable lines skipped (lenient mode only).
    pub skipped_lines: usize,
    /// Unterminated trailing fragments dropped (one per stream a
    /// worker was killed mid-write in).
    pub torn_tails: usize,
}

impl Profile {
    /// Total events across all workers.
    pub fn events(&self) -> u64 {
        self.workers.iter().map(|w| w.events).sum()
    }

    /// Distinct trials observed across workers. Trial spans are
    /// counted per worker and summed — a reaped trial finished by two
    /// workers counts twice, which is correct for *throughput* (both
    /// workers spent the time).
    pub fn trials(&self) -> u64 {
        self.workers.iter().map(|w| w.trials()).sum()
    }

    /// Campaign-level wall window (s): earliest to latest event across
    /// all workers.
    pub fn window_s(&self) -> f64 {
        let first =
            self.workers.iter().map(|w| w.first_ts_ms).filter(|&t| t > 0).min().unwrap_or(0);
        let last = self.workers.iter().map(|w| w.last_ts_ms).max().unwrap_or(0);
        last.saturating_sub(first) as f64 / 1e3
    }

    /// Observed completion rate (trials/s) over the campaign window.
    /// `None` until the window is wide enough to divide by.
    pub fn rate(&self) -> Option<f64> {
        let w = self.window_s();
        (w > 1e-3 && self.trials() > 0).then(|| self.trials() as f64 / w)
    }

    /// Counter totals summed across workers.
    pub fn counter_totals(&self) -> BTreeMap<String, u64> {
        let mut out = BTreeMap::new();
        for w in &self.workers {
            for (name, &n) in &w.counters {
                *out.entry(name.clone()).or_insert(0) += n;
            }
        }
        out
    }

    /// Histograms merged across workers.
    pub fn hist_totals(&self) -> BTreeMap<String, Vec<u64>> {
        let mut out: BTreeMap<String, Vec<u64>> = BTreeMap::new();
        for w in &self.workers {
            for (name, buckets) in &w.hists {
                let acc = out.entry(name.clone()).or_insert_with(|| vec![0; buckets.len()]);
                if acc.len() < buckets.len() {
                    acc.resize(buckets.len(), 0);
                }
                for (a, &b) in acc.iter_mut().zip(buckets) {
                    *a += b;
                }
            }
        }
        out
    }
}

/// Validates one parsed event against the schema in the
/// [`frlfi_obs`] crate docs and folds it into `w`.
fn fold_event(w: &mut WorkerProfile, v: &Value) -> Result<(), String> {
    let version = v.get("v").and_then(Value::as_int).ok_or("event missing integer `v`")?;
    if version != 1 {
        return Err(format!("unsupported event version {version}"));
    }
    let kind = v.get("kind").and_then(Value::as_str).ok_or("event missing string `kind`")?;
    let ts = v.get("ts_ms").and_then(Value::as_int).ok_or("event missing integer `ts_ms`")?;
    if ts < 0 {
        return Err("negative `ts_ms`".into());
    }
    w.note_ts(ts as u64);
    let int = |k: &str| {
        v.get(k)
            .and_then(Value::as_int)
            .filter(|&n| n >= 0)
            .map(|n| n as u64)
            .ok_or_else(|| format!("`{kind}` event missing non-negative integer `{k}`"))
    };
    let name = || {
        v.get("name")
            .and_then(Value::as_str)
            .map(str::to_owned)
            .ok_or_else(|| format!("`{kind}` event missing string `name`"))
    };
    match kind {
        "meta" => {
            let worker = v
                .get("worker")
                .and_then(Value::as_str)
                .ok_or("`meta` event missing string `worker`")?;
            int("pid")?;
            // Re-installs append to the same stream; ids must agree.
            if w.worker.is_empty() {
                w.worker = worker.to_owned();
            } else if w.worker != worker {
                return Err(format!(
                    "stream mixes workers `{}` and `{worker}` — copied obs files?",
                    w.worker
                ));
            }
        }
        "span" => {
            let dur = int("dur_us")?;
            if let Some(t) = v.get("trial") {
                t.as_int().filter(|&n| n >= 0).ok_or("`span` has non-integer `trial`")?;
            }
            let e = w.spans.entry(name()?).or_insert((0, 0));
            e.0 += 1;
            e.1 += dur;
        }
        "timer" => {
            let (n, total) = (int("n")?, int("total_us")?);
            let e = w.timers.entry(name()?).or_insert((0, 0));
            e.0 += n;
            e.1 += total;
        }
        "count" => {
            *w.counters.entry(name()?).or_insert(0) += int("n")?;
        }
        "hist" => {
            let buckets = v
                .get("buckets")
                .and_then(Value::as_array)
                .ok_or("`hist` event missing array `buckets`")?;
            if buckets.len() != frlfi_obs::HIST_BUCKETS {
                return Err(format!(
                    "`hist` has {} buckets, expected {}",
                    buckets.len(),
                    frlfi_obs::HIST_BUCKETS
                ));
            }
            let name = name()?;
            let acc = w.hists.entry(name).or_insert_with(|| vec![0; buckets.len()]);
            for (a, b) in acc.iter_mut().zip(buckets) {
                *a += b
                    .as_int()
                    .filter(|&n| n >= 0)
                    .ok_or("`hist` bucket is not a non-negative integer")?
                    as u64;
            }
        }
        "log" => {
            v.get("level").and_then(Value::as_str).ok_or("`log` event missing string `level`")?;
            v.get("msg").and_then(Value::as_str).ok_or("`log` event missing string `msg`")?;
        }
        other => return Err(format!("unknown event kind `{other}`")),
    }
    w.events += 1;
    Ok(())
}

/// Folds one worker stream. The final piece, if unterminated, is a
/// torn tail from a killed writer and is dropped in either mode — a
/// write that never completed is not an event.
fn load_stream(
    path: &Path,
    mode: CheckMode,
    profile: &mut Profile,
) -> Result<WorkerProfile, String> {
    let text = crate::io::with_retry("obs.read", || crate::io::read_to_string("obs.read", path))
        .map_err(|e| format!("read {}: {e}", path.display()))?;
    let mut w = WorkerProfile::default();
    let pieces: Vec<&str> = text.split_inclusive('\n').collect();
    for (i, piece) in pieces.iter().enumerate() {
        if !piece.ends_with('\n') {
            profile.torn_tails += 1;
            break;
        }
        let line = piece.trim();
        if line.is_empty() {
            continue;
        }
        let folded =
            json::parse(line).map_err(|e| e.to_string()).and_then(|v| fold_event(&mut w, &v));
        if let Err(e) = folded {
            match mode {
                CheckMode::Strict => {
                    return Err(format!("{} line {}: {e}", path.display(), i + 1));
                }
                CheckMode::Lenient => {
                    frlfi_obs::warn!(
                        "{} line {}: {e}; skipping event (telemetry only — campaign \
                         results are unaffected)",
                        path.display(),
                        i + 1
                    );
                    profile.skipped_lines += 1;
                }
            }
        }
    }
    if w.worker.is_empty() {
        // Meta line lost (torn off or skipped): fall back to the
        // `worker-<id>.jsonl` naming contract.
        w.worker = path
            .file_stem()
            .and_then(|s| s.to_str())
            .map(|s| s.strip_prefix("worker-").unwrap_or(s).to_owned())
            .unwrap_or_else(|| path.display().to_string());
    }
    Ok(w)
}

/// Loads every `obs/worker-*.jsonl` stream under campaign directory
/// `dir`. A campaign that never ran with `--obs` yields an empty
/// profile (no error: telemetry is opt-in).
///
/// # Errors
///
/// I/O failures; plus, under [`CheckMode::Strict`], the first
/// schema-invalid complete line.
pub fn load_dir(dir: &Path, mode: CheckMode) -> Result<Profile, String> {
    let obs_dir = dir.join(OBS_DIR);
    let mut profile = Profile::default();
    let entries = match std::fs::read_dir(&obs_dir) {
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(profile),
        Err(e) => return Err(format!("read {}: {e}", obs_dir.display())),
        Ok(entries) => entries,
    };
    let mut paths: Vec<_> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            p.extension().is_some_and(|x| x == "jsonl")
                && p.file_name().and_then(|n| n.to_str()).is_some_and(|n| n.starts_with("worker-"))
        })
        .collect();
    paths.sort();
    for path in paths {
        let w = load_stream(&path, mode, &mut profile)?;
        profile.workers.push(w);
    }
    profile.workers.sort_by(|a, b| a.worker.cmp(&b.worker));
    Ok(profile)
}

/// Renders the per-worker, per-phase wall-clock table: one row per
/// worker plus a `total` row; phase columns in seconds, completed
/// trials, and each worker's observed completion rate.
pub fn render_profile_table(profile: &Profile) -> Table {
    let columns = ["trials", "trial s", "train s", "eval s", "agg s", "io s", "trial/s"]
        .map(String::from)
        .to_vec();
    let mut table =
        Table::new("Campaign profile: wall-clock by phase", "worker", columns).with_precision(2);
    let s = |us: u64| us as f64 / 1e6;
    let row = |w: &WorkerProfile| {
        let trials = w.trials();
        let span_s = |name: &str| s(w.spans.get(name).map_or(0, |&(_, us)| us));
        let timer_s = |name: &str| s(w.timers.get(name).map_or(0, |&(_, us)| us));
        let window = w.window_s();
        let rate = if window > 1e-3 { trials as f64 / window } else { 0.0 };
        vec![
            trials as f64,
            s(w.trial_us()),
            span_s("train"),
            span_s("eval"),
            timer_s("aggregate"),
            timer_s("io"),
            rate,
        ]
    };
    let mut total = vec![0.0; 7];
    for w in &profile.workers {
        let r = row(w);
        for (t, v) in total.iter_mut().zip(&r) {
            *t += v;
        }
        table.push_row(w.worker.clone(), r);
    }
    if profile.workers.len() > 1 {
        // The total rate column sums per-worker rates: with N workers
        // active concurrently that *is* the fleet's aggregate rate.
        table.push_row("total", total);
    }
    table
}

/// Renders the full `campaign profile` report: the phase table,
/// counter totals, merged histograms, the observed completion rate
/// and — when the campaign is still incomplete — an ETA extrapolated
/// from that rate.
///
/// `remaining_trials` comes from the trial log (None when the
/// campaign state could not be read, e.g. profiling a copied `obs/`
/// directory alone).
pub fn render_report(profile: &Profile, remaining_trials: Option<usize>) -> String {
    let mut out = render_profile_table(profile).render();
    let totals = profile.counter_totals();
    if !totals.is_empty() {
        out.push_str("\ncounters\n");
        for (name, n) in &totals {
            out.push_str(&format!("  {name:<28} {n}\n"));
        }
    }
    for (name, buckets) in profile.hist_totals() {
        out.push_str(&format!("histogram {name} (power-of-two buckets)\n"));
        // Trim trailing empty buckets; label each as its range floor.
        let used = buckets.iter().rposition(|&n| n > 0).map_or(0, |i| i + 1);
        for (b, &n) in buckets.iter().take(used).enumerate() {
            if n > 0 {
                let floor = if b == 0 { 0 } else { 1u64 << (b - 1) };
                out.push_str(&format!("  >= {floor:<6} {n}\n"));
            }
        }
    }
    match profile.rate() {
        Some(rate) => {
            out.push_str(&format!(
                "observed: {} trials over {:.1} s wall ({rate:.2} trials/s)\n",
                profile.trials(),
                profile.window_s(),
            ));
            if let Some(remaining) = remaining_trials {
                if remaining > 0 {
                    out.push_str(&format!(
                        "eta: ~{:.0} s for {remaining} remaining trials at the observed rate\n",
                        remaining as f64 / rate
                    ));
                } else {
                    out.push_str("campaign complete\n");
                }
            }
        }
        None => out.push_str("observed: no trial spans yet\n"),
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_stream(dir: &Path, name: &str, lines: &str) {
        let obs = dir.join(OBS_DIR);
        std::fs::create_dir_all(&obs).unwrap();
        std::fs::write(obs.join(name), lines).unwrap();
    }

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("frlfi-profile-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    const STREAM: &str = concat!(
        r#"{"v":1,"kind":"meta","worker":"w0","pid":7,"ts_ms":1000}"#,
        "\n",
        r#"{"v":1,"kind":"span","name":"train","dur_us":1500,"ts_ms":1400}"#,
        "\n",
        r#"{"v":1,"kind":"span","name":"trial","trial":3,"dur_us":2000,"ts_ms":1500}"#,
        "\n",
        r#"{"v":1,"kind":"timer","name":"io","n":2,"total_us":300,"ts_ms":1600}"#,
        "\n",
        r#"{"v":1,"kind":"count","name":"nn.dispatch.reference","n":40,"ts_ms":1600}"#,
        "\n",
    );

    #[test]
    fn folds_a_stream_and_renders() {
        let dir = tmpdir("fold");
        write_stream(&dir, "worker-w0.jsonl", STREAM);
        let p = load_dir(&dir, CheckMode::Strict).unwrap();
        assert_eq!(p.workers.len(), 1);
        let w = &p.workers[0];
        assert_eq!(w.worker, "w0");
        assert_eq!(w.trials(), 1);
        assert_eq!(w.trial_us(), 2000);
        assert_eq!(w.spans["train"], (1, 1500));
        assert_eq!(w.timers["io"], (2, 300));
        assert_eq!(w.counters["nn.dispatch.reference"], 40);
        assert_eq!((w.first_ts_ms, w.last_ts_ms), (1000, 1600));
        let report = render_report(&p, Some(5));
        assert!(report.contains("w0"));
        assert!(report.contains("nn.dispatch.reference"));
        assert!(report.contains("eta:"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_dropped_interior_garbage_skipped_leniently() {
        let dir = tmpdir("torn");
        let mut text = String::from(STREAM);
        text.insert_str(0, "{not json}\n");
        text.push_str(r#"{"v":1,"kind":"count","name":"x","#); // torn tail
        write_stream(&dir, "worker-w0.jsonl", &text);
        let p = load_dir(&dir, CheckMode::Lenient).unwrap();
        assert_eq!(p.skipped_lines, 1);
        assert_eq!(p.torn_tails, 1);
        assert_eq!(p.workers[0].trials(), 1);
        // Strict mode rejects the interior garbage but still tolerates
        // the torn tail: SIGKILL mid-write must not fail `--check`.
        let err = load_dir(&dir, CheckMode::Strict).unwrap_err();
        assert!(err.contains("line 1"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn strict_tolerates_pure_torn_tail() {
        let dir = tmpdir("strict-tail");
        let mut text = String::from(STREAM);
        text.push_str(r#"{"v":1,"kind":"span"#);
        write_stream(&dir, "worker-w0.jsonl", &text);
        let p = load_dir(&dir, CheckMode::Strict).unwrap();
        assert_eq!(p.torn_tails, 1);
        assert_eq!(p.workers[0].events, 5);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_obs_dir_is_empty_profile() {
        let dir = tmpdir("empty");
        let p = load_dir(&dir, CheckMode::Strict).unwrap();
        assert!(p.workers.is_empty());
        assert_eq!(p.events(), 0);
        assert!(p.rate().is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn schema_violations_are_named() {
        let dir = tmpdir("schema");
        for (tag, line) in [
            ("version", r#"{"v":2,"kind":"count","name":"x","n":1,"ts_ms":1}"#),
            ("kind", r#"{"v":1,"kind":"mystery","ts_ms":1}"#),
            ("buckets", r#"{"v":1,"kind":"hist","name":"h","buckets":[1,2],"ts_ms":1}"#),
            ("field", r#"{"v":1,"kind":"span","name":"trial","ts_ms":1}"#),
        ] {
            write_stream(&dir, "worker-w0.jsonl", &format!("{line}\n"));
            assert!(
                load_dir(&dir, CheckMode::Strict).is_err(),
                "strict mode must reject {tag}: {line}"
            );
            let p = load_dir(&dir, CheckMode::Lenient).unwrap();
            assert_eq!(p.skipped_lines, 1, "lenient mode must skip {tag}");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn merges_hists_and_counters_across_workers() {
        let dir = tmpdir("merge");
        let hist_line = |n: u64| {
            let mut buckets = [0u64; frlfi_obs::HIST_BUCKETS];
            buckets[3] = n;
            format!(
                r#"{{"v":1,"kind":"hist","name":"nn.batch_size","buckets":[{}],"ts_ms":1}}"#,
                buckets.iter().map(u64::to_string).collect::<Vec<_>>().join(",")
            )
        };
        write_stream(&dir, "worker-a.jsonl", &format!("{}\n", hist_line(2)));
        write_stream(&dir, "worker-b.jsonl", &format!("{}\n", hist_line(5)));
        let p = load_dir(&dir, CheckMode::Strict).unwrap();
        assert_eq!(p.workers.len(), 2);
        assert_eq!(p.hist_totals()["nn.batch_size"][3], 7);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
