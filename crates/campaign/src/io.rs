//! Chaos-aware campaign I/O: deterministic infrastructure fault
//! injection and bounded retry with backoff.
//!
//! The campaign stack injects faults into the *modeled* system (BER
//! bit flips, dropout) as a matter of course; this module gives the
//! stack's own infrastructure the same treatment. Every file
//! operation the runner / coord / profile paths perform — open, read,
//! append, write, fsync, rename — routes through the wrappers here,
//! and when chaos mode is **armed** ([`chaos::arm`], the
//! `--chaos-seed` flag or the `CAMPAIGN_CHAOS` environment variable)
//! the wrappers inject seed-derived faults at chosen operation
//! indices:
//!
//! * **transient EIO** — the operation fails once with an I/O error;
//! * **short writes** — a prefix of the buffer really reaches the
//!   file, then the write errors (the torn-tail shape a failing disk
//!   or a full filesystem produces);
//! * **failed fsyncs** — `sync_data`/`sync_all` errors after the
//!   write succeeded;
//! * **latency spikes** — the operation sleeps, then succeeds.
//!
//! Every injection is counted via [`frlfi_obs`]
//! (`chaos.inject.eio` / `.short_write` / `.fsync` / `.latency`), so
//! `campaign profile` shows exactly what a chaos run endured.
//!
//! **Disarmed — the default — each wrapper costs one relaxed atomic
//! load and a predictable branch** before the real `std::fs` call;
//! no lock, no clock read, no allocation.
//!
//! ## Retry policy
//!
//! [`with_retry`] classifies errors transient-vs-fatal and retries
//! transients with bounded exponential backoff plus seeded jitter.
//! Transient: injected chaos faults marked transient, `Interrupted` /
//! `TimedOut` / `WouldBlock`, and raw `EIO`/`EAGAIN` — the classes a
//! flaky network filesystem or overloaded host produces. Everything
//! else (`NotFound`, `PermissionDenied`, …) fails immediately.
//! Retries are counted (`io.retry`, `io.retry.recovered`,
//! `io.retry.exhausted`) so they surface in `campaign profile`. The
//! policy is tunable via `CAMPAIGN_RETRY=attempts,base_ms,cap_ms`.
//!
//! Callers wrap **logical** operations (one whole
//! append-heal-fsync protocol step, one whole-file read), not raw
//! syscalls, so a retry always re-runs a self-contained, idempotent
//! recovery path.

use std::fs::File;
use std::io::{Read, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};

/// Locks a mutex, recovering from poison: a worker thread that
/// panicked while holding the lock must not cascade into killing the
/// process's other claim holders. Every value these mutexes guard
/// stays consistent under a mid-update panic (append-only vectors,
/// maps of independent entries, files whose partial writes the load
/// paths already heal), so continuing with the inner value is safe.
pub(crate) fn lock_recover<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// SplitMix64 — the seed-derivation mix behind every injection
/// decision (deterministic, no global RNG state).
fn mix(seed: u64, x: u64) -> u64 {
    let mut z = seed ^ x.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// What kind of filesystem operation a wrapper performs — bounds
/// which fault kinds can be injected into it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpClass {
    /// Opening or creating a file / directory.
    Open,
    /// A bulk read.
    Read,
    /// A write (short-write eligible).
    Write,
    /// A durability barrier.
    Fsync,
    /// An atomic publish.
    Rename,
}

/// Deterministic infrastructure fault injection.
pub mod chaos {
    use super::*;

    /// Declarative chaos configuration. Parsed from the
    /// `CAMPAIGN_CHAOS` grammar: comma-separated `key=value` pairs
    /// plus the bare flag `persist` —
    /// `seed=7,rate=20,op=17,tag=trials.append,every=3,persist,latency-ms=5`.
    ///
    /// * `seed` — master seed; every injection decision and fault
    ///   kind derives from it.
    /// * `rate` — percent (0–100) of eligible operations hit with a
    ///   seed-derived fault.
    /// * `op` — force one fault at exactly this global operation
    ///   index (what the torture harness sweeps).
    /// * `tag` — restrict injection to operations whose tag contains
    ///   this substring (e.g. `trials.append`, `claims`, `publish`).
    /// * `every` — fault every Nth *matching* operation (first match
    ///   faults, its retry passes — the deterministic
    ///   transient-then-recover shape).
    /// * `persist` — injected faults recur on retry (every matching
    ///   operation fails, retries included): the quarantine trigger.
    /// * `latency-ms` — duration of injected latency spikes.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct ChaosSpec {
        /// Master seed for injection decisions and fault kinds.
        pub seed: u64,
        /// Percent (0–100) of eligible operations faulted.
        pub rate: u8,
        /// Force one fault at exactly this operation index.
        pub op: Option<u64>,
        /// Restrict injection to tags containing this substring.
        pub tag: Option<String>,
        /// Fault every Nth matching operation (0 = off).
        pub every: u64,
        /// Faults recur on retry instead of clearing.
        pub persist: bool,
        /// Injected latency spike duration (ms).
        pub latency_ms: u64,
    }

    impl Default for ChaosSpec {
        fn default() -> Self {
            ChaosSpec {
                seed: 0,
                rate: 0,
                op: None,
                tag: None,
                every: 0,
                persist: false,
                latency_ms: 2,
            }
        }
    }

    impl ChaosSpec {
        /// A seed-only spec with the default fault rate — what
        /// `--chaos-seed N` arms.
        pub fn seeded(seed: u64) -> Self {
            ChaosSpec { seed, rate: 10, ..ChaosSpec::default() }
        }

        /// Parses the `CAMPAIGN_CHAOS` grammar.
        ///
        /// # Errors
        ///
        /// Returns a message naming the offending key or value.
        pub fn parse(text: &str) -> Result<Self, String> {
            let mut spec = ChaosSpec::default();
            for part in text.split(',').map(str::trim).filter(|p| !p.is_empty()) {
                let (key, value) = part.split_once('=').unwrap_or((part, ""));
                let int = || -> Result<u64, String> {
                    value.parse().map_err(|e| format!("chaos spec `{key}`: {e}"))
                };
                match key {
                    "seed" => spec.seed = int()?,
                    "rate" => {
                        let r = int()?;
                        if r > 100 {
                            return Err(format!("chaos spec `rate` must be 0–100, got {r}"));
                        }
                        spec.rate = r as u8;
                    }
                    "op" => spec.op = Some(int()?),
                    "every" => spec.every = int()?,
                    "latency-ms" | "latency_ms" => spec.latency_ms = int()?,
                    "tag" => spec.tag = Some(value.to_owned()),
                    "persist" => spec.persist = true,
                    other => return Err(format!("unknown chaos spec key `{other}`")),
                }
            }
            if spec.persist && spec.tag.is_none() && spec.op.is_none() {
                return Err("chaos spec `persist` needs a `tag` (or `op`) to bound the blast \
                            radius — persistent faults on every operation would also break \
                            the recovery paths under test"
                    .into());
            }
            Ok(spec)
        }
    }

    /// The fault kinds the injector produces.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub(super) enum FaultKind {
        Eio,
        ShortWrite,
        FsyncFail,
        Latency,
    }

    impl FaultKind {
        pub(super) fn counter(self) -> &'static str {
            match self {
                FaultKind::Eio => "chaos.inject.eio",
                FaultKind::ShortWrite => "chaos.inject.short_write",
                FaultKind::FsyncFail => "chaos.inject.fsync",
                FaultKind::Latency => "chaos.inject.latency",
            }
        }
    }

    struct ChaosState {
        spec: ChaosSpec,
        /// Global operation index: every injection-eligible operation
        /// (every attempt, retries included) takes the next index.
        ops: u64,
        /// Tag-matching operation count — the `every` denominator.
        matched: u64,
        /// Faults injected since arm.
        injected: u64,
    }

    /// One relaxed load on the disarmed fast path.
    static ARMED: AtomicBool = AtomicBool::new(false);
    static STATE: Mutex<Option<ChaosState>> = Mutex::new(None);

    /// Arms chaos mode: subsequent campaign I/O routes every
    /// operation through the injector. Resets the operation counter.
    pub fn arm(spec: ChaosSpec) {
        let mut state = lock_recover(&STATE);
        *state = Some(ChaosState { spec, ops: 0, matched: 0, injected: 0 });
        ARMED.store(true, Ordering::Release);
    }

    /// Disarms chaos mode; campaign I/O reverts to plain `std::fs`
    /// behind one branch.
    pub fn disarm() {
        ARMED.store(false, Ordering::Release);
        *lock_recover(&STATE) = None;
    }

    /// Whether chaos mode is armed.
    pub fn armed() -> bool {
        ARMED.load(Ordering::Relaxed)
    }

    /// Operations counted since [`arm`] (attempts, retries included).
    /// Arm a `rate=0` spec to count a fault-free run's operations —
    /// how the torture harness sizes its sweep.
    pub fn ops() -> u64 {
        lock_recover(&STATE).as_ref().map_or(0, |s| s.ops)
    }

    /// Faults injected since [`arm`].
    pub fn injected() -> u64 {
        lock_recover(&STATE).as_ref().map_or(0, |s| s.injected)
    }

    /// The injection decision for one operation. `None` = run the
    /// real operation.
    pub(super) fn decide(tag: &str, class: OpClass) -> Option<FaultKind> {
        let mut guard = lock_recover(&STATE);
        let state = guard.as_mut()?;
        let idx = state.ops;
        state.ops += 1;
        if let Some(want) = &state.spec.tag {
            if !tag.contains(want.as_str()) {
                return None;
            }
        }
        let matched = state.matched;
        state.matched += 1;
        let h = mix(state.spec.seed, idx);
        let hit = state.spec.persist
            || state.spec.op == Some(idx)
            || (state.spec.every > 0 && matched % state.spec.every == 0)
            || (state.spec.rate > 0 && h % 100 < state.spec.rate as u64);
        if !hit {
            return None;
        }
        // Fault kind derives from the seed too, bounded by what the
        // operation class can physically exhibit. Persistent faults
        // never inject latency (a spike always "recovers", which
        // would defeat the quarantine trigger under test).
        let pick = (h >> 8) % 4;
        let kind = match class {
            OpClass::Write => match pick {
                0 if !state.spec.persist => FaultKind::Latency,
                1 => FaultKind::ShortWrite,
                _ => FaultKind::Eio,
            },
            OpClass::Fsync => {
                if pick == 0 && !state.spec.persist {
                    FaultKind::Latency
                } else {
                    FaultKind::FsyncFail
                }
            }
            OpClass::Open | OpClass::Read | OpClass::Rename => {
                if pick == 0 && !state.spec.persist {
                    FaultKind::Latency
                } else {
                    FaultKind::Eio
                }
            }
        };
        state.injected += 1;
        frlfi_obs::count(kind.counter(), 1);
        Some(kind)
    }

    /// Latency spike duration from the armed spec.
    pub(super) fn latency_ms() -> u64 {
        lock_recover(&STATE).as_ref().map_or(0, |s| s.spec.latency_ms)
    }
}

/// The error payload of an injected fault: carries the transient
/// classification [`with_retry`] reads, and names the injection in
/// error chains (`injected transient EIO (chaos)`).
#[derive(Debug)]
struct ChaosFault {
    what: &'static str,
}

impl std::fmt::Display for ChaosFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "injected transient {} (chaos)", self.what)
    }
}

impl std::error::Error for ChaosFault {}

fn chaos_error(what: &'static str) -> std::io::Error {
    std::io::Error::other(ChaosFault { what })
}

/// Consults the injector before a non-write operation; sleeps through
/// latency spikes, turns EIO/fsync faults into errors.
fn check(tag: &str, class: OpClass) -> std::io::Result<()> {
    if !chaos::armed() {
        return Ok(());
    }
    match chaos::decide(tag, class) {
        None => Ok(()),
        Some(chaos::FaultKind::Latency) => {
            std::thread::sleep(std::time::Duration::from_millis(chaos::latency_ms()));
            Ok(())
        }
        Some(chaos::FaultKind::FsyncFail) => Err(chaos_error("fsync failure")),
        Some(chaos::FaultKind::ShortWrite) | Some(chaos::FaultKind::Eio) => Err(chaos_error("EIO")),
    }
}

/// Classifies an error transient (worth retrying) vs fatal. Injected
/// chaos faults are transient by construction — persistence is
/// modeled by the injector re-faulting the retry, exactly like a
/// genuinely failing disk.
pub fn is_transient(e: &std::io::Error) -> bool {
    if e.get_ref().is_some_and(|inner| inner.is::<ChaosFault>()) {
        return true;
    }
    matches!(
        e.kind(),
        std::io::ErrorKind::Interrupted
            | std::io::ErrorKind::TimedOut
            | std::io::ErrorKind::WouldBlock
    ) || matches!(e.raw_os_error(), Some(5 /* EIO */) | Some(11 /* EAGAIN */))
}

/// Bounded-retry policy: `attempts` total tries, exponential backoff
/// from `base_ms` capped at `cap_ms`, seeded jitter on top.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts (1 = no retry).
    pub attempts: u32,
    /// First backoff sleep (ms); doubles per retry.
    pub base_ms: u64,
    /// Backoff ceiling (ms).
    pub cap_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { attempts: 4, base_ms: 5, cap_ms: 80 }
    }
}

impl RetryPolicy {
    /// Parses the `CAMPAIGN_RETRY=attempts,base_ms,cap_ms` grammar.
    ///
    /// # Errors
    ///
    /// Returns a message on malformed values or zero attempts.
    pub fn parse(text: &str) -> Result<Self, String> {
        let parts: Vec<&str> = text.split(',').map(str::trim).collect();
        let [attempts, base_ms, cap_ms] = parts[..] else {
            return Err("CAMPAIGN_RETRY wants `attempts,base_ms,cap_ms`".into());
        };
        let policy = RetryPolicy {
            attempts: attempts.parse().map_err(|e| format!("CAMPAIGN_RETRY attempts: {e}"))?,
            base_ms: base_ms.parse().map_err(|e| format!("CAMPAIGN_RETRY base_ms: {e}"))?,
            cap_ms: cap_ms.parse().map_err(|e| format!("CAMPAIGN_RETRY cap_ms: {e}"))?,
        };
        if policy.attempts == 0 {
            return Err("CAMPAIGN_RETRY attempts must be ≥ 1".into());
        }
        Ok(policy)
    }
}

/// The process retry policy: `CAMPAIGN_RETRY` or the default.
/// (A malformed value falls back to the default with a warning —
/// a typo must not disable retries.)
pub fn retry_policy() -> RetryPolicy {
    static POLICY: OnceLock<RetryPolicy> = OnceLock::new();
    *POLICY.get_or_init(|| match std::env::var("CAMPAIGN_RETRY") {
        Err(_) => RetryPolicy::default(),
        Ok(text) => RetryPolicy::parse(&text).unwrap_or_else(|e| {
            frlfi_obs::warn!("{e}; using the default retry policy");
            RetryPolicy::default()
        }),
    })
}

/// Monotonic retry sequence — the jitter stream index.
static RETRY_SEQ: AtomicU64 = AtomicU64::new(0);

/// Runs a **logical, idempotent** I/O operation under the process
/// retry policy: transient failures ([`is_transient`]) back off
/// exponentially with seeded jitter and re-run the whole closure;
/// fatal errors and exhausted budgets propagate. Counted via
/// [`frlfi_obs`]: `io.retry` per retry sleep, `io.retry.recovered`
/// per operation that succeeded after retrying, `io.retry.exhausted`
/// per operation that ran out of attempts.
///
/// # Errors
///
/// The first fatal error, or the last transient error once the
/// attempt budget is spent.
pub fn with_retry<T>(
    tag: &'static str,
    mut op: impl FnMut() -> std::io::Result<T>,
) -> std::io::Result<T> {
    let policy = retry_policy();
    let mut attempt: u32 = 1;
    loop {
        match op() {
            Ok(v) => {
                if attempt > 1 {
                    frlfi_obs::count("io.retry.recovered", 1);
                }
                return Ok(v);
            }
            Err(e) if !is_transient(&e) => return Err(e),
            Err(e) if attempt >= policy.attempts => {
                frlfi_obs::count("io.retry.exhausted", 1);
                frlfi_obs::warn!(
                    "{tag}: transient I/O error persisted through {attempt} attempts: {e}"
                );
                return Err(e);
            }
            Err(e) => {
                frlfi_obs::count("io.retry", 1);
                frlfi_obs::info!("{tag}: transient I/O error (attempt {attempt}): {e}; retrying");
                let exp = policy.base_ms.saturating_shl(attempt - 1).min(policy.cap_ms);
                let jitter =
                    mix(0x0C4A_05F1, RETRY_SEQ.fetch_add(1, Ordering::Relaxed)) % (exp.max(1));
                std::thread::sleep(std::time::Duration::from_millis(exp + jitter / 2));
                attempt += 1;
            }
        }
    }
}

trait SaturatingShl {
    fn saturating_shl(self, shift: u32) -> Self;
}

impl SaturatingShl for u64 {
    fn saturating_shl(self, shift: u32) -> u64 {
        if shift >= 63 {
            u64::MAX
        } else {
            self.checked_shl(shift).unwrap_or(u64::MAX)
        }
    }
}

// ---- Chaos-aware operation wrappers -------------------------------
//
// Each wrapper consults the injector once (one branch when disarmed)
// and then performs the real `std::fs` operation. Callers compose
// them inside `with_retry` closures at logical-operation granularity.

/// `std::fs::create_dir_all` behind the injector.
///
/// # Errors
///
/// Injected faults or real I/O errors.
pub fn create_dir_all(tag: &'static str, path: &Path) -> std::io::Result<()> {
    check(tag, OpClass::Open)?;
    std::fs::create_dir_all(path)
}

/// `File::open` (read-only) behind the injector.
///
/// # Errors
///
/// Injected faults or real I/O errors.
pub fn open_read(tag: &'static str, path: &Path) -> std::io::Result<File> {
    check(tag, OpClass::Open)?;
    File::open(path)
}

/// Opens (creating if needed) in append+read mode behind the
/// injector — the shared-log handle shape.
///
/// # Errors
///
/// Injected faults or real I/O errors.
pub fn open_append(tag: &'static str, path: &Path) -> std::io::Result<File> {
    check(tag, OpClass::Open)?;
    std::fs::OpenOptions::new().create(true).append(true).read(true).open(path)
}

/// `File::create` (truncating) behind the injector.
///
/// # Errors
///
/// Injected faults or real I/O errors.
pub fn create_trunc(tag: &'static str, path: &Path) -> std::io::Result<File> {
    check(tag, OpClass::Open)?;
    File::create(path)
}

/// Reads a whole file to a string behind the injector.
///
/// # Errors
///
/// Injected faults or real I/O errors.
pub fn read_to_string(tag: &'static str, path: &Path) -> std::io::Result<String> {
    check(tag, OpClass::Read)?;
    std::fs::read_to_string(path)
}

/// `Read::read_to_end` behind the injector.
///
/// # Errors
///
/// Injected faults or real I/O errors.
pub fn read_to_end(tag: &'static str, file: &mut File, buf: &mut Vec<u8>) -> std::io::Result<()> {
    check(tag, OpClass::Read)?;
    file.read_to_end(buf).map(|_| ())
}

/// `Write::write_all` behind the injector. A **short-write** fault
/// really persists a prefix of `buf` before erroring — the torn
/// shape every loader in the campaign directory already heals — so
/// the retrying caller must re-establish its framing (truncate back,
/// or heal the fragment into its own line) rather than resume
/// mid-buffer.
///
/// # Errors
///
/// Injected faults or real I/O errors.
pub fn write_all(tag: &'static str, file: &mut File, buf: &[u8]) -> std::io::Result<()> {
    if chaos::armed() {
        match chaos::decide(tag, OpClass::Write) {
            None => {}
            Some(chaos::FaultKind::Latency) => {
                std::thread::sleep(std::time::Duration::from_millis(chaos::latency_ms()));
            }
            Some(chaos::FaultKind::ShortWrite) => {
                file.write_all(&buf[..buf.len() / 2])?;
                return Err(chaos_error("short write"));
            }
            Some(_) => return Err(chaos_error("EIO")),
        }
    }
    file.write_all(buf)
}

/// `File::sync_data` behind the injector.
///
/// # Errors
///
/// Injected faults or real I/O errors.
pub fn sync_data(tag: &'static str, file: &File) -> std::io::Result<()> {
    check(tag, OpClass::Fsync)?;
    file.sync_data()
}

/// `File::sync_all` behind the injector.
///
/// # Errors
///
/// Injected faults or real I/O errors.
pub fn sync_all(tag: &'static str, file: &File) -> std::io::Result<()> {
    check(tag, OpClass::Fsync)?;
    file.sync_all()
}

/// `std::fs::rename` behind the injector.
///
/// # Errors
///
/// Injected faults or real I/O errors.
pub fn rename(tag: &'static str, from: &Path, to: &Path) -> std::io::Result<()> {
    check(tag, OpClass::Rename)?;
    std::fs::rename(from, to)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    /// Chaos state is process-global; tests that arm it serialize.
    static CHAOS_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn spec_parses_the_full_grammar() {
        let spec =
            chaos::ChaosSpec::parse("seed=7, rate=20, op=3, tag=trials, every=2, persist").unwrap();
        assert_eq!(spec.seed, 7);
        assert_eq!(spec.rate, 20);
        assert_eq!(spec.op, Some(3));
        assert_eq!(spec.tag.as_deref(), Some("trials"));
        assert_eq!(spec.every, 2);
        assert!(spec.persist);
        assert_eq!(chaos::ChaosSpec::parse("").unwrap(), chaos::ChaosSpec::default());
        assert!(chaos::ChaosSpec::parse("rate=200").is_err());
        assert!(chaos::ChaosSpec::parse("wat=1").is_err());
        assert!(
            chaos::ChaosSpec::parse("persist").is_err(),
            "unbounded persistent faults must be rejected"
        );
    }

    #[test]
    fn retry_policy_parses_and_rejects() {
        assert_eq!(
            RetryPolicy::parse("3,10,100").unwrap(),
            RetryPolicy { attempts: 3, base_ms: 10, cap_ms: 100 }
        );
        assert!(RetryPolicy::parse("0,1,1").is_err());
        assert!(RetryPolicy::parse("3,10").is_err());
    }

    #[test]
    fn transient_classification() {
        assert!(is_transient(&std::io::Error::from(std::io::ErrorKind::Interrupted)));
        assert!(is_transient(&std::io::Error::from(std::io::ErrorKind::TimedOut)));
        assert!(is_transient(&std::io::Error::from_raw_os_error(5)));
        assert!(is_transient(&chaos_error("EIO")));
        assert!(!is_transient(&std::io::Error::from(std::io::ErrorKind::NotFound)));
        assert!(!is_transient(&std::io::Error::from(std::io::ErrorKind::PermissionDenied)));
    }

    #[test]
    fn with_retry_recovers_transients_and_fails_fast_on_fatal() {
        let calls = AtomicUsize::new(0);
        let out = with_retry("test", || {
            if calls.fetch_add(1, Ordering::Relaxed) < 2 {
                Err(chaos_error("EIO"))
            } else {
                Ok(42)
            }
        });
        assert_eq!(out.unwrap(), 42);
        assert_eq!(calls.load(Ordering::Relaxed), 3);

        let calls = AtomicUsize::new(0);
        let out: std::io::Result<()> = with_retry("test", || {
            calls.fetch_add(1, Ordering::Relaxed);
            Err(std::io::Error::from(std::io::ErrorKind::NotFound))
        });
        assert!(out.is_err());
        assert_eq!(calls.load(Ordering::Relaxed), 1, "fatal errors must not retry");

        let calls = AtomicUsize::new(0);
        let out: std::io::Result<()> = with_retry("test", || {
            calls.fetch_add(1, Ordering::Relaxed);
            Err(chaos_error("EIO"))
        });
        assert!(out.is_err());
        assert_eq!(
            calls.load(Ordering::Relaxed) as u32,
            retry_policy().attempts,
            "transient errors must exhaust the attempt budget"
        );
    }

    #[test]
    fn injection_is_deterministic_and_counted() {
        let _serial = lock_recover(&CHAOS_LOCK);
        let dir = std::env::temp_dir().join(format!("frlfi-io-chaos-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("x.jsonl");

        // rate=0: every op succeeds, ops are counted.
        chaos::arm(chaos::ChaosSpec { seed: 1, ..chaos::ChaosSpec::default() });
        let mut f = open_append("t.open", &path).unwrap();
        write_all("t.write", &mut f, b"hello\n").unwrap();
        sync_data("t.fsync", &f).unwrap();
        let ops = chaos::ops();
        assert_eq!(ops, 3);
        assert_eq!(chaos::injected(), 0);

        // op=K: exactly one fault at index K (an error, or a latency
        // spike that succeeds after sleeping — both count), then clean.
        chaos::arm(chaos::ChaosSpec { seed: 1, op: Some(1), ..chaos::ChaosSpec::default() });
        let mut f = open_append("t.open", &path).unwrap();
        // (an Ok here means the seed-derived fault kind was a latency
        // spike, which sleeps and succeeds — it still counts)
        if let Err(e) = write_all("t.write", &mut f, b"hello\n") {
            assert!(is_transient(&e), "{e}");
        }
        assert_eq!(chaos::injected(), 1);
        write_all("t.write", &mut f, b"hello\n").unwrap();
        assert_eq!(chaos::injected(), 1, "an op-targeted fault must not recur");

        // tag+persist: every matching op faults, others run clean.
        chaos::arm(chaos::ChaosSpec {
            seed: 1,
            tag: Some("t.write".into()),
            persist: true,
            ..chaos::ChaosSpec::default()
        });
        let mut f = open_append("t.open", &path).unwrap();
        assert!(write_all("t.write", &mut f, b"x\n").is_err());
        assert!(write_all("t.write", &mut f, b"x\n").is_err(), "persistent faults recur");
        sync_data("t.fsync", &f).unwrap();

        // every=2 on a tag: first matching op faults, retry recovers.
        chaos::arm(chaos::ChaosSpec {
            seed: 9,
            tag: Some("t.write".into()),
            every: 2,
            ..chaos::ChaosSpec::default()
        });
        let mut f = open_append("t.open", &path).unwrap();
        assert!(write_all("t.write", &mut f, b"x\n").is_err());
        assert!(write_all("t.write", &mut f, b"x\n").is_ok());
        assert!(write_all("t.write", &mut f, b"x\n").is_err());

        chaos::disarm();
        assert!(!chaos::armed());
        let mut f = open_append("t.open", &path).unwrap();
        write_all("t.write", &mut f, b"clean\n").unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn short_write_persists_a_prefix() {
        let _serial = lock_recover(&CHAOS_LOCK);
        let dir = std::env::temp_dir().join(format!("frlfi-io-short-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("s.jsonl");
        // Find a seed whose first write op injects a short write.
        let mut found = false;
        for seed in 0..64 {
            chaos::arm(chaos::ChaosSpec {
                seed,
                tag: Some("s.write".into()),
                persist: true,
                ..chaos::ChaosSpec::default()
            });
            let _ = std::fs::remove_file(&path);
            let mut f = open_append("s.open", &path).unwrap();
            let err = write_all("s.write", &mut f, b"0123456789\n").unwrap_err();
            let len = std::fs::metadata(&path).unwrap().len();
            if err.to_string().contains("short write") {
                assert_eq!(len, 5, "a short write must persist exactly half the buffer");
                found = true;
                break;
            }
            assert_eq!(len, 0, "a plain EIO must persist nothing");
        }
        chaos::disarm();
        assert!(found, "no seed in 0..64 produced a short write — kind derivation broken?");
        std::fs::remove_dir_all(&dir).ok();
    }
}
