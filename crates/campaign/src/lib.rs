//! # frlfi-campaign
//!
//! Declarative scenario & campaign orchestration for the FRL-FI
//! reproduction.
//!
//! The paper's entire evaluation is a family of fault-injection
//! campaigns — `(cell × repeat)` grids of independent trials. This
//! crate makes those campaigns *data* instead of code:
//!
//! * [`Scenario`] — a serde-backed, TOML-loadable description of one
//!   campaign: system, fleet, quantization, fault model, mitigation,
//!   [`Scale`](frlfi::Scale);
//! * [`registry`] — named built-ins covering the paper's two systems
//!   (`fig3a/b/c`, `fig5a/b`, `fig7a`) plus new variants
//!   (`grid-dynamic`, `grid-dropout`, `grid-fleet`), and the
//!   train-once / eval-many studies (`fig4`, `fig8a/b`, `datatypes`,
//!   `layers`) that expand into task DAGs instead of flat sweeps;
//! * [`artifacts`] — the DAG's train half: model-weight artifacts
//!   published atomically into `<dir>/artifacts/` and recorded in
//!   append-only `artifacts.jsonl`; eval tasks gate on the records
//!   and load frozen weights instead of retraining;
//! * [`runner`] — a sharded [`runner::run`] that streams per-trial
//!   records to a JSONL log and **resumes** interrupted campaigns by
//!   skipping persisted `(cell, repeat)` trials; statistics are
//!   bit-identical to an uninterrupted run at any thread count;
//! * [`coord`] — the multi-process worker/lease subsystem: with
//!   [`CoordMode::Shared`], N runner processes share one campaign
//!   directory through an append-only `claims.jsonl` (atomic claim
//!   acquisition, heartbeat renewal, stale-lease reaping), and the
//!   result stays byte-identical to the single-process run;
//! * [`io`] — chaos-aware campaign I/O: every runner / coord /
//!   profile file operation routes through deterministic fault
//!   injection (`--chaos-seed` / `CAMPAIGN_CHAOS`) and bounded
//!   retry with backoff; [`quarantine`] — poison-trial quarantine
//!   and degraded summaries once the retry budget is spent;
//! * [`profile`] — offline aggregation of the opt-in [`frlfi_obs`]
//!   telemetry streams (`campaign run --obs` writes
//!   `<dir>/obs/worker-<id>.jsonl`): per-worker per-phase wall-clock
//!   tables, counters, histograms, observed throughput and ETA;
//! * the `campaign` binary — `campaign run <spec.toml | builtin>`,
//!   `campaign list`, `campaign resume <dir>`, `campaign worker <dir>`
//!   (join a campaign as one process of many), `campaign status <dir>`,
//!   `campaign profile <dir>`.
//!
//! Trial evaluation goes through the same
//! [`frlfi::experiments::harness`] functions the figure drivers use,
//! with the same `derive_seed` scheme — a TOML-specified Fig. 3a
//! campaign reproduces `experiments::fig3::agent_faults` exactly.
//!
//! ```no_run
//! use frlfi::Scale;
//! use frlfi_campaign::{registry, runner, runner::RunnerConfig};
//!
//! let scenario = registry::builtin("fig3a", Scale::Smoke).expect("built-in");
//! let out = runner::run(&scenario, "runs/fig3a-smoke".as_ref(), &RunnerConfig::default())
//!     .expect("campaign");
//! println!("{}", out.table.expect("complete").render());
//! ```

pub mod artifacts;
pub mod coord;
pub mod fmt;
pub mod io;
pub mod perf;
pub mod profile;
pub mod quarantine;
pub mod registry;
pub mod runner;
pub mod spec;
pub mod top;
pub mod trace;

pub use artifacts::{ArtifactRecord, ArtifactTracker};
pub use coord::{
    CampaignStatus, CoordConfig, CoordConfigError, Coordinator, KindCounts, TaskKinds,
};
pub use io::RetryPolicy;
pub use profile::{CheckMode, Profile, WorkerProfile};
pub use quarantine::QuarantineRecord;
pub use runner::{CampaignOutcome, CoordMode, RunnerConfig, TrialRecord};
pub use spec::{Campaign, CellGrid, ModelSpec, Scenario, SpecError, StudySpec, SystemKind, Trials};
