//! `campaign trace`: exports a campaign's observability streams as
//! Chrome trace-event JSON, loadable in Perfetto (<https://ui.perfetto.dev>)
//! or `chrome://tracing`.
//!
//! Each worker process becomes one trace *process* (its `pid` is the
//! worker's index in sorted order; the real pid is in the process
//! metadata), and each of its threads one *track* (`tid` from the v2
//! per-thread tag). Spans become `"X"` complete events whose `args`
//! carry the causal ids (`id`/`parent`/`trial`) plus the aggregated
//! timer totals (`aggregate`, `io`, …) attributed to them, so the
//! `trial → train/eval → aggregate/io` tree survives the export both
//! visually (time nesting on a track) and structurally (the id
//! links). Counters — including the chaos-injection and retry
//! counters — become `"C"` counter tracks; facade log lines (retry
//! warnings, quarantine notices) become `"i"` instant events.
//!
//! ## Timeline placement
//!
//! v2 streams place span starts with microsecond precision:
//! `meta.ts_ms·1000 + (span.mono_us − meta.mono_us)` converts the
//! process-monotonic start offset to an absolute wall microsecond
//! using the stream's meta anchor. v1 spans (no monotonic clock) fall
//! back to `ts_ms·1000 − dur_us`, the start implied by the wall-stamp
//! the span's *end* was recorded at — coarser, but still a valid
//! timeline. Mixed directories export fine; nothing in a v1 stream is
//! rejected.

use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

use serde::{Map, Value};

use crate::fmt::json;
use crate::profile::OBS_DIR;

/// Export options for [`export`].
#[derive(Debug, Clone, Copy, Default)]
pub struct TraceOptions {
    /// Restrict the export to one trial's span tree (the spans whose
    /// `trial` matches, plus every descendant reached through
    /// `parent` links). Counters and logs are omitted when filtering.
    pub trial: Option<u64>,
}

/// A rendered export plus its load diagnostics.
#[derive(Debug, Clone)]
pub struct TraceExport {
    /// The trace-event JSON document.
    pub json: String,
    /// Trace events emitted (excluding metadata records).
    pub events: usize,
    /// Complete-but-unparseable lines skipped (telemetry is advisory).
    pub skipped_lines: usize,
    /// Unterminated trailing fragments dropped.
    pub torn_tails: usize,
}

#[derive(Debug, Default)]
struct SpanEv {
    name: String,
    ts_ms: u64,
    dur_us: u64,
    id: u64,
    parent: u64,
    tid: u64,
    mono_us: Option<u64>,
    trial: Option<u64>,
}

#[derive(Debug, Default)]
struct Stream {
    worker: String,
    pid: u64,
    meta_ts_ms: Option<u64>,
    meta_mono_us: Option<u64>,
    spans: Vec<SpanEv>,
    /// (name, parent span id, n, total µs) aggregates.
    timers: Vec<(String, u64, u64, u64)>,
    /// (name, ts_ms, n) counter deltas in stream order.
    counts: Vec<(String, u64, u64)>,
    /// (level, msg, ts_ms, tid).
    logs: Vec<(String, String, u64, u64)>,
}

impl Stream {
    /// Absolute wall-clock microsecond for a span start.
    fn span_start_us(&self, s: &SpanEv) -> u64 {
        match (self.meta_ts_ms, self.meta_mono_us, s.mono_us) {
            (Some(ts), Some(anchor), Some(mono)) => {
                (ts * 1000).saturating_add(mono.saturating_sub(anchor))
            }
            _ => (s.ts_ms * 1000).saturating_sub(s.dur_us),
        }
    }
}

fn get_u64(v: &Value, k: &str) -> Option<u64> {
    v.get(k).and_then(Value::as_int).filter(|&n| n >= 0).map(|n| n as u64)
}

fn fold_line(stream: &mut Stream, v: &Value) {
    let Some(kind) = v.get("kind").and_then(Value::as_str) else { return };
    let ts_ms = get_u64(v, "ts_ms").unwrap_or(0);
    let name = || v.get("name").and_then(Value::as_str).map(str::to_owned);
    match kind {
        "meta" => {
            if let Some(w) = v.get("worker").and_then(Value::as_str) {
                if stream.worker.is_empty() {
                    stream.worker = w.to_owned();
                }
            }
            stream.pid = get_u64(v, "pid").unwrap_or(0);
            // First anchor wins: re-installs append to the same
            // stream and share the process monotonic clock.
            if stream.meta_ts_ms.is_none() {
                if let Some(mono) = get_u64(v, "mono_us") {
                    stream.meta_ts_ms = Some(ts_ms);
                    stream.meta_mono_us = Some(mono);
                }
            }
        }
        "span" => {
            let (Some(name), Some(dur_us)) = (name(), get_u64(v, "dur_us")) else { return };
            stream.spans.push(SpanEv {
                name,
                ts_ms,
                dur_us,
                id: get_u64(v, "id").unwrap_or(0),
                parent: get_u64(v, "parent").unwrap_or(0),
                tid: get_u64(v, "tid").unwrap_or(1),
                mono_us: get_u64(v, "mono_us"),
                trial: get_u64(v, "trial"),
            });
        }
        "timer" => {
            let (Some(name), Some(n), Some(total)) =
                (name(), get_u64(v, "n"), get_u64(v, "total_us"))
            else {
                return;
            };
            stream.timers.push((name, get_u64(v, "parent").unwrap_or(0), n, total));
        }
        "count" => {
            let (Some(name), Some(n)) = (name(), get_u64(v, "n")) else { return };
            stream.counts.push((name, ts_ms, n));
        }
        "log" => {
            let (Some(level), Some(msg)) =
                (v.get("level").and_then(Value::as_str), v.get("msg").and_then(Value::as_str))
            else {
                return;
            };
            stream.logs.push((
                level.to_owned(),
                msg.to_owned(),
                ts_ms,
                get_u64(v, "tid").unwrap_or(1),
            ));
        }
        _ => {}
    }
}

fn load_stream(path: &Path, export: &mut TraceExport) -> Result<Stream, String> {
    let text = crate::io::with_retry("obs.read", || crate::io::read_to_string("obs.read", path))
        .map_err(|e| format!("read {}: {e}", path.display()))?;
    let mut stream = Stream::default();
    for piece in text.split_inclusive('\n') {
        if !piece.ends_with('\n') {
            export.torn_tails += 1;
            break;
        }
        let line = piece.trim();
        if line.is_empty() {
            continue;
        }
        match json::parse(line) {
            Ok(v) => fold_line(&mut stream, &v),
            Err(_) => export.skipped_lines += 1,
        }
    }
    if stream.worker.is_empty() {
        stream.worker = path
            .file_stem()
            .and_then(|s| s.to_str())
            .map(|s| s.strip_prefix("worker-").unwrap_or(s).to_owned())
            .unwrap_or_else(|| path.display().to_string());
    }
    Ok(stream)
}

fn table(entries: Vec<(&str, Value)>) -> Value {
    Value::Table(entries.into_iter().map(|(k, v)| (k.to_owned(), v)).collect::<Map>())
}

fn int(n: u64) -> Value {
    Value::Int(n as i64)
}

fn s(v: impl Into<String>) -> Value {
    Value::Str(v.into())
}

/// One metadata record (`ph: "M"`).
fn meta_event(name: &str, pid: u64, tid: u64, value: &str) -> Value {
    table(vec![
        ("ph", s("M")),
        ("name", s(name)),
        ("pid", int(pid)),
        ("tid", int(tid)),
        ("args", table(vec![("name", s(value))])),
    ])
}

/// The span ids kept by a `--trial N` filter: every span whose
/// `trial` field matches, plus all descendants reached via `parent`.
/// Span ids increase parent-before-child within a process, so one
/// id-ordered pass closes the set.
fn trial_span_ids(spans: &[&SpanEv], trial: u64) -> BTreeSet<u64> {
    let mut keep = BTreeSet::new();
    let mut ordered: Vec<&&SpanEv> = spans.iter().collect();
    ordered.sort_by_key(|s| s.id);
    for span in ordered {
        if span.trial == Some(trial) || (span.parent != 0 && keep.contains(&span.parent)) {
            keep.insert(span.id);
        }
    }
    keep
}

/// Exports every `obs/worker-*.jsonl` stream under campaign directory
/// `dir` as one Chrome trace-event JSON document.
///
/// # Errors
///
/// I/O failures, or an `obs/` directory with no worker streams (an
/// empty trace is more likely a wrong path than an empty campaign).
pub fn export(dir: &Path, opts: &TraceOptions) -> Result<TraceExport, String> {
    let obs_dir = dir.join(OBS_DIR);
    let mut export =
        TraceExport { json: String::new(), events: 0, skipped_lines: 0, torn_tails: 0 };
    let entries = std::fs::read_dir(&obs_dir).map_err(|e| {
        format!("read {}: {e} (did this campaign run with --obs?)", obs_dir.display())
    })?;
    let mut paths: Vec<_> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            p.extension().is_some_and(|x| x == "jsonl")
                && p.file_name().and_then(|n| n.to_str()).is_some_and(|n| n.starts_with("worker-"))
        })
        .collect();
    paths.sort();
    if paths.is_empty() {
        return Err(format!(
            "no obs streams under {} (did this campaign run with --obs?)",
            obs_dir.display()
        ));
    }
    let mut streams = Vec::new();
    for path in &paths {
        streams.push(load_stream(path, &mut export)?);
    }
    streams.sort_by(|a, b| a.worker.cmp(&b.worker));

    let mut events: Vec<(u64, Value)> = Vec::new(); // (ts µs, event) for sorting
    let mut metadata: Vec<Value> = Vec::new();
    for (i, stream) in streams.iter().enumerate() {
        let pid = i as u64 + 1;
        metadata.push(meta_event(
            "process_name",
            pid,
            0,
            &format!("worker {} (pid {})", stream.worker, stream.pid),
        ));
        // Timer aggregates keyed by the span they ran under.
        let mut timers_by_parent: BTreeMap<u64, Vec<(&str, u64, u64)>> = BTreeMap::new();
        for (name, parent, n, total) in &stream.timers {
            timers_by_parent.entry(*parent).or_default().push((name, *n, *total));
        }
        let span_refs: Vec<&SpanEv> = stream.spans.iter().collect();
        let keep = opts.trial.map(|t| trial_span_ids(&span_refs, t));
        let mut tids = BTreeSet::new();
        for span in &stream.spans {
            if let Some(keep) = &keep {
                if !keep.contains(&span.id) {
                    continue;
                }
            }
            tids.insert(span.tid);
            let mut args: Vec<(&str, Value)> = vec![("id", int(span.id))];
            if span.parent != 0 {
                args.push(("parent", int(span.parent)));
            }
            if let Some(t) = span.trial {
                args.push(("trial", int(t)));
            }
            let mut timer_args: Vec<(String, Value)> = Vec::new();
            if let Some(timers) = timers_by_parent.get(&span.id) {
                let mut merged: BTreeMap<&str, (u64, u64)> = BTreeMap::new();
                for &(name, n, total) in timers {
                    let e = merged.entry(name).or_insert((0, 0));
                    e.0 += n;
                    e.1 += total;
                }
                for (name, (n, total)) in merged {
                    timer_args.push((format!("timer.{name}.n"), int(n)));
                    timer_args.push((format!("timer.{name}.us"), int(total)));
                }
            }
            let mut arg_map: Map = args.into_iter().map(|(k, v)| (k.to_owned(), v)).collect();
            arg_map.extend(timer_args);
            let ts = stream.span_start_us(span);
            events.push((
                ts,
                table(vec![
                    ("ph", s("X")),
                    ("cat", s("span")),
                    ("name", s(span.name.as_str())),
                    ("pid", int(pid)),
                    ("tid", int(span.tid)),
                    ("ts", int(ts)),
                    ("dur", int(span.dur_us)),
                    ("args", Value::Table(arg_map)),
                ]),
            ));
        }
        for tid in tids {
            metadata.push(meta_event(
                "thread_name",
                pid,
                tid,
                &format!("worker {} thread {tid}", stream.worker),
            ));
        }
        if keep.is_none() {
            // Counter tracks: cumulative per name, so the chaos /
            // retry / dispatch counters read as running totals.
            let mut cum: BTreeMap<&str, u64> = BTreeMap::new();
            for (name, ts_ms, n) in &stream.counts {
                let c = cum.entry(name).or_insert(0);
                *c += n;
                events.push((
                    ts_ms * 1000,
                    table(vec![
                        ("ph", s("C")),
                        ("name", s(name.as_str())),
                        ("pid", int(pid)),
                        ("tid", int(0)),
                        ("ts", int(ts_ms * 1000)),
                        ("args", table(vec![("value", int(*c))])),
                    ]),
                ));
            }
            for (level, msg, ts_ms, tid) in &stream.logs {
                events.push((
                    ts_ms * 1000,
                    table(vec![
                        ("ph", s("i")),
                        ("name", s(format!("log.{level}"))),
                        ("pid", int(pid)),
                        ("tid", int(*tid)),
                        ("ts", int(ts_ms * 1000)),
                        ("s", s("t")),
                        ("args", table(vec![("msg", s(msg.as_str()))])),
                    ]),
                ));
            }
        }
    }
    events.sort_by_key(|(ts, _)| *ts);
    export.events = events.len();
    let mut all = metadata;
    all.extend(events.into_iter().map(|(_, e)| e));
    let doc = table(vec![("traceEvents", Value::Array(all)), ("displayTimeUnit", s("ms"))]);
    export.json = json::render(&doc);
    Ok(export)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("frlfi-trace-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(dir.join(OBS_DIR)).unwrap();
        dir
    }

    const V2_STREAM: &str = concat!(
        r#"{"v":2,"kind":"meta","worker":"w0","pid":7,"ts_ms":1000,"mono_us":500}"#,
        "\n",
        r#"{"v":2,"kind":"span","name":"train","dur_us":600,"ts_ms":1001,"id":2,"parent":1,"tid":1,"mono_us":600}"#,
        "\n",
        r#"{"v":2,"kind":"span","name":"eval","dur_us":200,"ts_ms":1002,"id":3,"parent":1,"tid":1,"mono_us":1300}"#,
        "\n",
        r#"{"v":2,"kind":"timer","name":"io","n":1,"total_us":50,"ts_ms":1002,"tid":1,"parent":1}"#,
        "\n",
        r#"{"v":2,"kind":"span","name":"trial","trial":4,"dur_us":1000,"ts_ms":1002,"id":1,"tid":1,"mono_us":550}"#,
        "\n",
        r#"{"v":2,"kind":"count","name":"io.retry","n":2,"ts_ms":1002,"tid":1}"#,
        "\n",
        r#"{"v":2,"kind":"log","level":"warn","msg":"retrying","ts_ms":1002,"tid":1}"#,
        "\n",
    );

    fn write_stream(dir: &Path, name: &str, text: &str) {
        std::fs::write(dir.join(OBS_DIR).join(name), text).unwrap();
    }

    fn trace_events(json_text: &str) -> Vec<Value> {
        let doc = json::parse(json_text).unwrap();
        doc.get("traceEvents").and_then(Value::as_array).unwrap().to_vec()
    }

    #[test]
    fn exports_span_tree_counters_and_logs() {
        let dir = tmpdir("tree");
        write_stream(&dir, "worker-w0.jsonl", V2_STREAM);
        let out = export(&dir, &TraceOptions::default()).unwrap();
        let events = trace_events(&out.json);
        let spans: Vec<&Value> =
            events.iter().filter(|e| e.get("ph").and_then(Value::as_str) == Some("X")).collect();
        assert_eq!(spans.len(), 3);
        let find = |name: &str| {
            *spans.iter().find(|e| e.get("name").and_then(Value::as_str) == Some(name)).unwrap()
        };
        let (trial, train) = (find("trial"), find("train"));
        let arg = |e: &Value, k: &str| e.get("args").unwrap().get(k).and_then(Value::as_int);
        assert_eq!(arg(trial, "id"), Some(1));
        assert_eq!(arg(trial, "trial"), Some(4));
        assert_eq!(arg(train, "parent"), arg(trial, "id"));
        // The io timer aggregate is attributed to the trial span.
        assert_eq!(arg(trial, "timer.io.us"), Some(50));
        // Monotonic placement: train starts inside trial's interval.
        let ts = |e: &Value| e.get("ts").and_then(Value::as_int).unwrap();
        let dur = |e: &Value| e.get("dur").and_then(Value::as_int).unwrap();
        assert!(ts(train) >= ts(trial) && ts(train) + dur(train) <= ts(trial) + dur(trial));
        // mono alignment: trial start = 1000*1000 + (550-500).
        assert_eq!(ts(trial), 1_000_050);
        assert!(events.iter().any(|e| e.get("ph").and_then(Value::as_str) == Some("C")));
        assert!(events.iter().any(|e| e.get("ph").and_then(Value::as_str) == Some("i")));
        assert!(events.iter().any(|e| e.get("ph").and_then(Value::as_str) == Some("M")));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn trial_filter_keeps_the_subtree_only() {
        let dir = tmpdir("filter");
        let mut text = String::from(V2_STREAM);
        // A second trial's spans that must be filtered out.
        text.push_str(concat!(
            r#"{"v":2,"kind":"span","name":"train","dur_us":10,"ts_ms":1003,"id":5,"parent":4,"tid":1,"mono_us":2100}"#,
            "\n",
            r#"{"v":2,"kind":"span","name":"trial","trial":9,"dur_us":30,"ts_ms":1003,"id":4,"tid":1,"mono_us":2000}"#,
            "\n",
        ));
        write_stream(&dir, "worker-w0.jsonl", &text);
        let out = export(&dir, &TraceOptions { trial: Some(4) }).unwrap();
        let events = trace_events(&out.json);
        let names: Vec<&str> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Value::as_str) == Some("X"))
            .filter_map(|e| e.get("name").and_then(Value::as_str))
            .collect();
        assert_eq!(names.len(), 3, "{names:?}");
        assert!(!events.iter().any(|e| e.get("ph").and_then(Value::as_str) == Some("C")));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn v1_streams_fall_back_to_wall_clock_placement() {
        let dir = tmpdir("v1");
        write_stream(
            &dir,
            "worker-a.jsonl",
            concat!(
                r#"{"v":1,"kind":"meta","worker":"a","pid":3,"ts_ms":1000}"#,
                "\n",
                r#"{"v":1,"kind":"span","name":"trial","trial":0,"dur_us":2000,"ts_ms":1005}"#,
                "\n",
            ),
        );
        let out = export(&dir, &TraceOptions::default()).unwrap();
        let events = trace_events(&out.json);
        let span =
            events.iter().find(|e| e.get("ph").and_then(Value::as_str) == Some("X")).unwrap();
        // start = 1005*1000 - 2000.
        assert_eq!(span.get("ts").and_then(Value::as_int), Some(1_003_000));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_obs_dir_is_an_error() {
        let dir = std::env::temp_dir().join(format!("frlfi-trace-none-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        assert!(export(&dir, &TraceOptions::default()).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
