//! The `campaign` CLI: run, list and resume declarative fault-injection
//! campaigns.
//!
//! ```text
//! campaign list
//! campaign expand <spec.toml | builtin-name | --all> [--scale smoke|bench|full]
//! campaign run <spec.toml | builtin-name> [--scale smoke|bench|full]
//!              [--out DIR] [--threads N] [--max-trials N] [--batched] [--wide]
//!              [--shared] [--worker-id ID] [--lease-ms N] [--obs] [--quiet]
//! campaign resume <dir> [--threads N] [--max-trials N] [--batched] [--wide]
//!                 [--shared] [--worker-id ID] [--lease-ms N] [--obs] [--quiet]
//! campaign worker <dir> [--threads N] [--max-trials N] [--batched]
//!                 [--worker-id ID] [--lease-ms N] [--obs] [--quiet]
//! campaign status <dir>
//! campaign profile <dir> [--check]
//! campaign trace <dir> [--trial N] [--out FILE.json]
//! campaign top <dir> [--once] [--interval-ms N]
//! campaign perf <dir> [--baseline FILE.json] [--gate PCT] [--mode TAG] [--out FILE.json]
//! ```
//!
//! `expand` validates and expands a scenario without running anything
//! (CI uses `expand --all` to prove every builtin declares cleanly at
//! every scale).
//!
//! `--batched` runs every trial's evaluation episodes in lock-step on
//! the batched inference fast path (bit-identical values, higher
//! throughput); `--wide` appends the per-cell mean/min/max/ci95 spread
//! table to `summary.txt` (exclusive mode only — in shared mode the
//! summary must be a pure function of the trial log; render the
//! spread after completion with `campaign resume <dir> --wide`).
//!
//! `--shared` turns the campaign directory into a multi-process work
//! queue (trials are leased through `claims.jsonl`); `worker` joins an
//! existing campaign as one process of many and runs until the whole
//! campaign completes; `status` prints live progress, active workers
//! (with per-worker elapsed time and heartbeat age) and stale claims.
//! The final `summary.txt` is byte-identical however many processes
//! took part.
//!
//! `--obs` (or `CAMPAIGN_OBS=1`) streams structured telemetry to
//! `<dir>/obs/worker-<id>.jsonl` — results stay byte-identical;
//! `profile` folds those streams into a per-worker per-phase
//! wall-clock table with throughput and ETA (`--check` additionally
//! fails on any schema-invalid event line); `--quiet` suppresses
//! warnings (`CAMPAIGN_LOG=quiet|warn|info|debug` sets the stderr
//! level globally).
//!
//! `--chaos-seed N` (or the richer `CAMPAIGN_CHAOS` grammar) arms
//! deterministic infrastructure fault injection against the
//! campaign's own file I/O — transient EIO, short writes, failed
//! fsyncs, latency spikes — exercising the retry/backoff and
//! quarantine machinery (see the README "Failure model" section).
//! A run whose trials exhaust their retries exits nonzero with an
//! explicitly marked degraded `summary.txt` unless `--allow-partial`.

use std::path::PathBuf;
use std::process::ExitCode;

use frlfi::Scale;
use frlfi_campaign::{
    coord, io, perf, profile, registry, runner, top, trace, CoordConfig, CoordMode, RunnerConfig,
    Scenario,
};

fn usage() -> &'static str {
    "usage:\n  \
     campaign list\n  \
     campaign expand <spec.toml | builtin-name | --all> [--scale smoke|bench|full]\n  \
     campaign run <spec.toml | builtin-name> [--scale smoke|bench|full] [--out DIR] \
     [--threads N] [--max-trials N] [--batched] [--wide] [--shared] [--worker-id ID] \
     [--lease-ms N] [--obs] [--quiet] [--chaos-seed N] [--allow-partial]\n  \
     campaign resume <dir> [--threads N] [--max-trials N] [--batched] [--wide] [--shared] \
     [--worker-id ID] [--lease-ms N] [--obs] [--quiet] [--chaos-seed N] [--allow-partial]\n  \
     campaign worker <dir> [--threads N] [--max-trials N] [--batched] \
     [--worker-id ID] [--lease-ms N] [--obs] [--quiet] [--chaos-seed N] [--allow-partial]\n  \
     campaign status <dir>\n  \
     campaign profile <dir> [--check]\n  \
     campaign trace <dir> [--trial N] [--out FILE.json]\n  \
     campaign top <dir> [--once] [--interval-ms N]\n  \
     campaign perf <dir> [--baseline FILE.json] [--gate PCT] [--mode TAG] [--out FILE.json]\n\n\
     CAMPAIGN_OBS=1 enables --obs; CAMPAIGN_LOG=quiet|warn|info|debug sets the stderr level;\n\
     CAMPAIGN_CHAOS=seed=N[,rate=P,tag=T,op=K,every=M,persist,latency-ms=L] arms fault \
     injection;\n\
     CAMPAIGN_RETRY=attempts,base_ms,cap_ms tunes the transient-I/O retry policy"
}

struct Options {
    scale: Option<Scale>,
    out: Option<PathBuf>,
    all: bool,
    shared: bool,
    check: bool,
    quiet: bool,
    chaos_seed: Option<u64>,
    trial: Option<u64>,
    once: bool,
    interval_ms: u64,
    baseline: Option<PathBuf>,
    gate: Option<f64>,
    mode: String,
    coord: CoordConfig,
    cfg: RunnerConfig,
    positional: Vec<String>,
}

/// `CAMPAIGN_OBS` enables telemetry without touching scripts' flag
/// lists; empty or `0` means off.
fn env_obs() -> bool {
    std::env::var("CAMPAIGN_OBS").is_ok_and(|v| !v.is_empty() && v != "0")
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        scale: None,
        out: None,
        all: false,
        shared: false,
        check: false,
        quiet: false,
        chaos_seed: None,
        trial: None,
        once: false,
        interval_ms: 1000,
        baseline: None,
        gate: None,
        mode: "per-obs".to_owned(),
        coord: CoordConfig::default(),
        cfg: RunnerConfig { obs: env_obs(), ..RunnerConfig::default() },
        positional: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut take = |name: &str| {
            it.next().map(String::as_str).ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--all" => opts.all = true,
            "--scale" => {
                opts.scale = Some(match take("--scale")? {
                    "smoke" => Scale::Smoke,
                    "bench" => Scale::Bench,
                    "full" => Scale::Full,
                    other => return Err(format!("unknown scale {other:?}")),
                })
            }
            "--out" => opts.out = Some(PathBuf::from(take("--out")?)),
            "--threads" => {
                opts.cfg.threads =
                    take("--threads")?.parse().map_err(|e| format!("--threads: {e}"))?
            }
            "--max-trials" => {
                opts.cfg.max_new_trials =
                    Some(take("--max-trials")?.parse().map_err(|e| format!("--max-trials: {e}"))?)
            }
            "--batched" => opts.cfg.batched = true,
            "--wide" => opts.cfg.wide_summary = true,
            "--shared" => opts.shared = true,
            "--obs" => opts.cfg.obs = true,
            "--check" => opts.check = true,
            "--quiet" => opts.quiet = true,
            "--worker-id" => opts.coord.worker_id = take("--worker-id")?.to_owned(),
            "--lease-ms" => {
                opts.coord.lease_ms =
                    take("--lease-ms")?.parse().map_err(|e| format!("--lease-ms: {e}"))?;
                // Typed validation: leases too short for the lease/3
                // heartbeat cadence make workers self-reap — reject
                // them here instead of letting the queue thrash.
                opts.coord.validate().map_err(|e| e.to_string())?;
                // Keep waiting workers responsive to short test leases.
                opts.coord.poll_ms = opts.coord.poll_ms.min(opts.coord.lease_ms / 2).max(10);
            }
            "--chaos-seed" => {
                opts.chaos_seed =
                    Some(take("--chaos-seed")?.parse().map_err(|e| format!("--chaos-seed: {e}"))?)
            }
            "--allow-partial" => opts.cfg.allow_partial = true,
            "--trial" => {
                opts.trial = Some(take("--trial")?.parse().map_err(|e| format!("--trial: {e}"))?)
            }
            "--once" => opts.once = true,
            "--interval-ms" => {
                opts.interval_ms =
                    take("--interval-ms")?.parse().map_err(|e| format!("--interval-ms: {e}"))?
            }
            "--baseline" => opts.baseline = Some(PathBuf::from(take("--baseline")?)),
            "--gate" => {
                opts.gate = Some(take("--gate")?.parse().map_err(|e| format!("--gate: {e}"))?)
            }
            "--mode" => opts.mode = take("--mode")?.to_owned(),
            other if other.starts_with('-') => return Err(format!("unknown option {other:?}")),
            other => opts.positional.push(other.to_owned()),
        }
    }
    if opts.shared {
        opts.coord.validate().map_err(|e| e.to_string())?;
        opts.cfg.coord = CoordMode::Shared(opts.coord.clone());
    }
    Ok(opts)
}

/// Arms chaos mode when requested: `--chaos-seed N` (the default
/// spec with that seed) or the full `CAMPAIGN_CHAOS` grammar; the
/// flag wins when both are present. Loud on purpose — a chaos-armed
/// run injects real faults into its own persistence.
fn arm_chaos(opts: &Options) -> Result<(), String> {
    let spec = if let Some(seed) = opts.chaos_seed {
        Some(io::chaos::ChaosSpec::seeded(seed))
    } else {
        match std::env::var("CAMPAIGN_CHAOS") {
            Ok(text) if !text.is_empty() && text != "0" => Some(
                io::chaos::ChaosSpec::parse(&text).map_err(|e| format!("CAMPAIGN_CHAOS: {e}"))?,
            ),
            _ => None,
        }
    };
    if let Some(spec) = spec {
        frlfi_obs::warn!(
            "chaos mode armed (seed {}, rate {}%): injecting deterministic I/O faults",
            spec.seed,
            spec.rate
        );
        io::chaos::arm(spec);
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run_cli(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("campaign: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run_cli(args: &[String]) -> Result<(), String> {
    let Some(command) = args.first() else {
        return Err(usage().to_owned());
    };
    let opts = parse_options(&args[1..])?;
    if opts.quiet {
        frlfi_obs::set_log_level(frlfi_obs::Level::Quiet);
    }
    arm_chaos(&opts)?;
    match command.as_str() {
        "list" => {
            println!("built-in scenarios:");
            let mut last_system = None;
            for e in registry::entries() {
                if last_system != Some(e.system) {
                    println!("\n{:?}:", e.system);
                    last_system = Some(e.system);
                }
                println!("  {:<14} {}", e.name, e.description);
            }
            println!("\nrun one with: campaign run <name> --scale smoke");
            Ok(())
        }
        "expand" => {
            let scale = opts.scale.unwrap_or(Scale::Bench);
            let scenarios: Vec<Scenario> = if opts.all {
                if !opts.positional.is_empty() {
                    return Err("pass either a target or --all, not both".into());
                }
                registry::entries().iter().map(|e| e.scenario(scale)).collect()
            } else {
                let [ref target] = opts.positional[..] else {
                    return Err(usage().to_owned());
                };
                vec![load_target(target, scale)?]
            };
            for scenario in &scenarios {
                let campaign = scenario.expand().map_err(|e| format!("{}: {e}", scenario.name))?;
                println!(
                    "{:<14} {:?} @ {:?}: {} cells × {} repeats = {} trials",
                    scenario.name,
                    scenario.system,
                    scenario.scale,
                    campaign.trials.len(),
                    campaign.repeats,
                    campaign.total_trials(),
                );
            }
            Ok(())
        }
        "run" => {
            if opts.all {
                return Err("--all is only valid with `campaign expand`".into());
            }
            let [ref target] = opts.positional[..] else {
                return Err(usage().to_owned());
            };
            let scale = opts.scale.unwrap_or(Scale::Bench);
            let scenario = load_target(target, scale)?;
            let dir = opts.out.unwrap_or_else(|| {
                PathBuf::from(format!(
                    "runs/{}-{}",
                    scenario.name,
                    format!("{:?}", scenario.scale).to_lowercase()
                ))
            });
            report(&scenario, runner::run(&scenario, &dir, &opts.cfg)?, &dir);
            Ok(())
        }
        "resume" => {
            if opts.all {
                return Err("--all is only valid with `campaign expand`".into());
            }
            let [ref dir] = opts.positional[..] else {
                return Err(usage().to_owned());
            };
            let dir = PathBuf::from(dir);
            let scenario = runner::load_scenario(&dir.join("campaign.toml"))?;
            report(&scenario, runner::resume(&dir, &opts.cfg)?, &dir);
            Ok(())
        }
        "worker" => {
            let [ref dir] = opts.positional[..] else {
                return Err(usage().to_owned());
            };
            let dir = PathBuf::from(dir);
            let scenario = runner::load_scenario(&dir.join("campaign.toml")).map_err(|e| {
                format!(
                    "{e}\nworkers join an existing campaign — start one first with \
                     `campaign run <spec> --out {} --shared`",
                    dir.display()
                )
            })?;
            // A worker is always a shared-queue participant.
            opts.coord.validate().map_err(|e| e.to_string())?;
            let mut cfg = opts.cfg.clone();
            cfg.coord = CoordMode::Shared(opts.coord.clone());
            println!(
                "worker {} joining campaign {} in {}",
                opts.coord.worker_id,
                scenario.name,
                dir.display()
            );
            report(&scenario, runner::resume(&dir, &cfg)?, &dir);
            Ok(())
        }
        "status" => {
            let [ref dir] = opts.positional[..] else {
                return Err(usage().to_owned());
            };
            let dir = PathBuf::from(dir);
            print_status(&coord::status(&dir)?, &dir);
            Ok(())
        }
        "profile" => {
            let [ref dir] = opts.positional[..] else {
                return Err(usage().to_owned());
            };
            let dir = PathBuf::from(dir);
            let mode =
                if opts.check { profile::CheckMode::Strict } else { profile::CheckMode::Lenient };
            let p = profile::load_dir(&dir, mode)?;
            if opts.check && p.workers.is_empty() {
                return Err(format!(
                    "no obs streams under {}/{} — run with --obs (or CAMPAIGN_OBS=1) first",
                    dir.display(),
                    profile::OBS_DIR
                ));
            }
            // Remaining work comes from the campaign state when the
            // directory has one (a bare obs/ copy profiles fine, just
            // without an ETA).
            let remaining =
                coord::status(&dir).ok().map(|s| s.total_trials.saturating_sub(s.completed_trials));
            print!("{}", profile::render_report(&p, remaining));
            if opts.check {
                println!(
                    "check ok: {} events across {} stream(s), {} torn tail(s)",
                    p.events(),
                    p.workers.len(),
                    p.torn_tails
                );
            }
            Ok(())
        }
        "trace" => {
            let [ref dir] = opts.positional[..] else {
                return Err(usage().to_owned());
            };
            let dir = PathBuf::from(dir);
            let out = trace::export(&dir, &trace::TraceOptions { trial: opts.trial })?;
            match &opts.out {
                Some(path) => {
                    std::fs::write(path, &out.json)
                        .map_err(|e| format!("write {}: {e}", path.display()))?;
                    println!(
                        "wrote {} trace events to {} ({} skipped line(s), {} torn tail(s)) — \
                         load it at https://ui.perfetto.dev or chrome://tracing",
                        out.events,
                        path.display(),
                        out.skipped_lines,
                        out.torn_tails
                    );
                }
                None => println!("{}", out.json),
            }
            Ok(())
        }
        "top" => {
            let [ref dir] = opts.positional[..] else {
                return Err(usage().to_owned());
            };
            let dir = PathBuf::from(dir);
            top::run(&dir, &top::TopOptions { once: opts.once, interval_ms: opts.interval_ms })
        }
        "perf" => {
            let [ref dir] = opts.positional[..] else {
                return Err(usage().to_owned());
            };
            let dir = PathBuf::from(dir);
            let record = perf::measure(&dir, &opts.mode)?;
            let rendered = frlfi_campaign::fmt::json::render(&record.to_value());
            if let Some(path) = &opts.out {
                std::fs::write(path, format!("{rendered}\n"))
                    .map_err(|e| format!("write {}: {e}", path.display()))?;
            }
            println!("{rendered}");
            if let Some(baseline_path) = &opts.baseline {
                let text = std::fs::read_to_string(baseline_path)
                    .map_err(|e| format!("read {}: {e}", baseline_path.display()))?;
                let baseline = perf::parse_baseline(&text)
                    .map_err(|e| format!("{}: {e}", baseline_path.display()))?;
                let gate = opts.gate.unwrap_or(25.0);
                let regressions = perf::compare(&record, &baseline, gate)?;
                if regressions.is_empty() {
                    println!("perf gate ok vs {} (gate {gate}%)", baseline_path.display());
                } else {
                    return Err(format!(
                        "perf gate FAILED vs {} (gate {gate}%):\n  {}",
                        baseline_path.display(),
                        regressions.join("\n  ")
                    ));
                }
            }
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n{}", usage())),
    }
}

fn print_status(s: &coord::CampaignStatus, dir: &std::path::Path) {
    println!(
        "campaign {} ({}): {}/{} trials done ({:.0}%)",
        s.name,
        s.scale,
        s.completed_trials,
        s.total_trials,
        s.percent()
    );
    println!("  grid: {} cells × {} repeats", s.cells, s.repeats);
    if let Some(t) = &s.tasks {
        println!(
            "  tasks: train {} pending · {} claimed · {} done · {} quarantined",
            t.train.pending, t.train.claimed, t.train.done, t.train.quarantined
        );
        println!(
            "         eval  {} pending · {} claimed · {} done · {} quarantined",
            t.eval.pending, t.eval.claimed, t.eval.done, t.eval.quarantined
        );
        if !t.unsatisfied.is_empty() {
            println!("  eval tasks blocked on unpublished artifacts: {}", t.unsatisfied.join(", "));
        }
    }
    if s.workers.is_empty() {
        println!("  workers: none active");
    } else {
        println!("  workers: {} active", s.workers.len());
        let now = coord::now_ms();
        // Ages derive from the claim log's record timestamps; `?`
        // marks workers whose records predate the ts_ms field.
        let age = |ts_ms: u64| {
            if ts_ms == 0 {
                "?".to_owned()
            } else {
                format!("{:.1}s", now.saturating_sub(ts_ms) as f64 / 1000.0)
            }
        };
        for w in &s.workers {
            let lease = w.latest_deadline_ms.saturating_sub(now);
            println!(
                "    {:<20} {} trial(s) in flight, lease expires in {:.1}s, \
                 up {}, last heartbeat {} ago",
                w.worker,
                w.active_trials.len(),
                lease as f64 / 1000.0,
                age(w.first_seen_ms),
                age(w.last_seen_ms),
            );
        }
    }
    if s.stale_claims > 0 {
        println!("  stale claims: {} (re-claimable; their workers look dead)", s.stale_claims);
    }
    if s.quarantined > 0 {
        println!(
            "  quarantined: {} trial(s) (I/O retries exhausted — see quarantine.jsonl; \
             a healthy worker re-runs them bitwise-identically)",
            s.quarantined
        );
    }
    // Live rate from the opt-in telemetry streams, when present.
    if let Ok(p) = profile::load_dir(dir, profile::CheckMode::Lenient) {
        if let Some(rate) = p.rate() {
            println!(
                "  observed: {:.2} trials/s across {} obs stream(s) — `campaign profile {}` \
                 breaks this down by phase",
                rate,
                p.workers.len(),
                dir.display()
            );
        }
    }
    println!("  summary.txt: {}", if s.summary_written { "written" } else { "pending" });
}

/// A `run` target is a TOML file path or a registry name.
fn load_target(target: &str, scale: Scale) -> Result<Scenario, String> {
    if std::path::Path::new(target).exists() {
        let text = std::fs::read_to_string(target).map_err(|e| format!("read {target}: {e}"))?;
        return Scenario::from_toml(&text).map_err(|e| format!("{target}: {e}"));
    }
    registry::builtin(target, scale).ok_or_else(|| {
        format!("{target:?} is neither a file nor a built-in; `campaign list` shows the built-ins")
    })
}

fn report(scenario: &Scenario, out: frlfi_campaign::CampaignOutcome, dir: &std::path::Path) {
    println!(
        "campaign {} ({:?}): {}/{} trials done ({} new) in {}",
        scenario.name,
        scenario.scale,
        out.completed_trials,
        out.total_trials,
        out.new_trials,
        dir.display(),
    );
    match out.table {
        Some(table) => print!("{table}"),
        None if !out.quarantined.is_empty() => println!(
            "DEGRADED — {} trial(s) quarantined (I/O retries exhausted); summary.txt is \
             marked partial. Reclaim with: campaign resume {}",
            out.quarantined.len(),
            dir.display()
        ),
        None => println!("incomplete — continue with: campaign resume {}", dir.display()),
    }
}
