//! The `campaign` CLI: run, list and resume declarative fault-injection
//! campaigns.
//!
//! ```text
//! campaign list
//! campaign expand <spec.toml | builtin-name | --all> [--scale smoke|bench|full]
//! campaign run <spec.toml | builtin-name> [--scale smoke|bench|full]
//!              [--out DIR] [--threads N] [--max-trials N] [--batched] [--wide]
//!              [--shared] [--worker-id ID] [--lease-ms N]
//! campaign resume <dir> [--threads N] [--max-trials N] [--batched] [--wide]
//!                 [--shared] [--worker-id ID] [--lease-ms N]
//! campaign worker <dir> [--threads N] [--max-trials N] [--batched]
//!                 [--worker-id ID] [--lease-ms N]
//! campaign status <dir>
//! ```
//!
//! `expand` validates and expands a scenario without running anything
//! (CI uses `expand --all` to prove every builtin declares cleanly at
//! every scale).
//!
//! `--batched` runs every trial's evaluation episodes in lock-step on
//! the batched inference fast path (bit-identical values, higher
//! throughput); `--wide` appends the per-cell mean/min/max/ci95 spread
//! table to `summary.txt` (exclusive mode only — in shared mode the
//! summary must be a pure function of the trial log; render the
//! spread after completion with `campaign resume <dir> --wide`).
//!
//! `--shared` turns the campaign directory into a multi-process work
//! queue (trials are leased through `claims.jsonl`); `worker` joins an
//! existing campaign as one process of many and runs until the whole
//! campaign completes; `status` prints live progress, active workers
//! and stale claims. The final `summary.txt` is byte-identical however
//! many processes took part.

use std::path::PathBuf;
use std::process::ExitCode;

use frlfi::Scale;
use frlfi_campaign::{coord, registry, runner, CoordConfig, CoordMode, RunnerConfig, Scenario};

fn usage() -> &'static str {
    "usage:\n  \
     campaign list\n  \
     campaign expand <spec.toml | builtin-name | --all> [--scale smoke|bench|full]\n  \
     campaign run <spec.toml | builtin-name> [--scale smoke|bench|full] [--out DIR] \
     [--threads N] [--max-trials N] [--batched] [--wide] [--shared] [--worker-id ID] \
     [--lease-ms N]\n  \
     campaign resume <dir> [--threads N] [--max-trials N] [--batched] [--wide] [--shared] \
     [--worker-id ID] [--lease-ms N]\n  \
     campaign worker <dir> [--threads N] [--max-trials N] [--batched] \
     [--worker-id ID] [--lease-ms N]\n  \
     campaign status <dir>"
}

struct Options {
    scale: Option<Scale>,
    out: Option<PathBuf>,
    all: bool,
    shared: bool,
    coord: CoordConfig,
    cfg: RunnerConfig,
    positional: Vec<String>,
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        scale: None,
        out: None,
        all: false,
        shared: false,
        coord: CoordConfig::default(),
        cfg: RunnerConfig::default(),
        positional: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut take = |name: &str| {
            it.next().map(String::as_str).ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--all" => opts.all = true,
            "--scale" => {
                opts.scale = Some(match take("--scale")? {
                    "smoke" => Scale::Smoke,
                    "bench" => Scale::Bench,
                    "full" => Scale::Full,
                    other => return Err(format!("unknown scale {other:?}")),
                })
            }
            "--out" => opts.out = Some(PathBuf::from(take("--out")?)),
            "--threads" => {
                opts.cfg.threads =
                    take("--threads")?.parse().map_err(|e| format!("--threads: {e}"))?
            }
            "--max-trials" => {
                opts.cfg.max_new_trials =
                    Some(take("--max-trials")?.parse().map_err(|e| format!("--max-trials: {e}"))?)
            }
            "--batched" => opts.cfg.batched = true,
            "--wide" => opts.cfg.wide_summary = true,
            "--shared" => opts.shared = true,
            "--worker-id" => opts.coord.worker_id = take("--worker-id")?.to_owned(),
            "--lease-ms" => {
                opts.coord.lease_ms =
                    take("--lease-ms")?.parse().map_err(|e| format!("--lease-ms: {e}"))?;
                if opts.coord.lease_ms == 0 {
                    return Err("--lease-ms must be ≥ 1".into());
                }
                // Keep waiting workers responsive to short test leases.
                opts.coord.poll_ms = opts.coord.poll_ms.min(opts.coord.lease_ms / 2).max(10);
            }
            other if other.starts_with('-') => return Err(format!("unknown option {other:?}")),
            other => opts.positional.push(other.to_owned()),
        }
    }
    if opts.shared {
        opts.cfg.coord = CoordMode::Shared(opts.coord.clone());
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run_cli(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("campaign: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run_cli(args: &[String]) -> Result<(), String> {
    let Some(command) = args.first() else {
        return Err(usage().to_owned());
    };
    let opts = parse_options(&args[1..])?;
    match command.as_str() {
        "list" => {
            println!("built-in scenarios:");
            let mut last_system = None;
            for e in registry::entries() {
                if last_system != Some(e.system) {
                    println!("\n{:?}:", e.system);
                    last_system = Some(e.system);
                }
                println!("  {:<14} {}", e.name, e.description);
            }
            println!("\nrun one with: campaign run <name> --scale smoke");
            Ok(())
        }
        "expand" => {
            let scale = opts.scale.unwrap_or(Scale::Bench);
            let scenarios: Vec<Scenario> = if opts.all {
                if !opts.positional.is_empty() {
                    return Err("pass either a target or --all, not both".into());
                }
                registry::entries().iter().map(|e| e.scenario(scale)).collect()
            } else {
                let [ref target] = opts.positional[..] else {
                    return Err(usage().to_owned());
                };
                vec![load_target(target, scale)?]
            };
            for scenario in &scenarios {
                let campaign = scenario.expand().map_err(|e| format!("{}: {e}", scenario.name))?;
                println!(
                    "{:<14} {:?} @ {:?}: {} cells × {} repeats = {} trials",
                    scenario.name,
                    scenario.system,
                    scenario.scale,
                    campaign.trials.len(),
                    campaign.repeats,
                    campaign.total_trials(),
                );
            }
            Ok(())
        }
        "run" => {
            if opts.all {
                return Err("--all is only valid with `campaign expand`".into());
            }
            let [ref target] = opts.positional[..] else {
                return Err(usage().to_owned());
            };
            let scale = opts.scale.unwrap_or(Scale::Bench);
            let scenario = load_target(target, scale)?;
            let dir = opts.out.unwrap_or_else(|| {
                PathBuf::from(format!(
                    "runs/{}-{}",
                    scenario.name,
                    format!("{:?}", scenario.scale).to_lowercase()
                ))
            });
            report(&scenario, runner::run(&scenario, &dir, &opts.cfg)?, &dir);
            Ok(())
        }
        "resume" => {
            if opts.all {
                return Err("--all is only valid with `campaign expand`".into());
            }
            let [ref dir] = opts.positional[..] else {
                return Err(usage().to_owned());
            };
            let dir = PathBuf::from(dir);
            let scenario = runner::load_scenario(&dir.join("campaign.toml"))?;
            report(&scenario, runner::resume(&dir, &opts.cfg)?, &dir);
            Ok(())
        }
        "worker" => {
            let [ref dir] = opts.positional[..] else {
                return Err(usage().to_owned());
            };
            let dir = PathBuf::from(dir);
            let scenario = runner::load_scenario(&dir.join("campaign.toml")).map_err(|e| {
                format!(
                    "{e}\nworkers join an existing campaign — start one first with \
                     `campaign run <spec> --out {} --shared`",
                    dir.display()
                )
            })?;
            // A worker is always a shared-queue participant.
            let mut cfg = opts.cfg.clone();
            cfg.coord = CoordMode::Shared(opts.coord.clone());
            println!(
                "worker {} joining campaign {} in {}",
                opts.coord.worker_id,
                scenario.name,
                dir.display()
            );
            report(&scenario, runner::resume(&dir, &cfg)?, &dir);
            Ok(())
        }
        "status" => {
            let [ref dir] = opts.positional[..] else {
                return Err(usage().to_owned());
            };
            print_status(&coord::status(PathBuf::from(dir).as_path())?);
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n{}", usage())),
    }
}

fn print_status(s: &coord::CampaignStatus) {
    println!(
        "campaign {} ({}): {}/{} trials done ({:.0}%)",
        s.name,
        s.scale,
        s.completed_trials,
        s.total_trials,
        s.percent()
    );
    println!("  grid: {} cells × {} repeats", s.cells, s.repeats);
    if s.workers.is_empty() {
        println!("  workers: none active");
    } else {
        println!("  workers: {} active", s.workers.len());
        let now = coord::now_ms();
        for w in &s.workers {
            let lease = w.latest_deadline_ms.saturating_sub(now);
            println!(
                "    {:<20} {} trial(s) in flight, lease expires in {:.1}s",
                w.worker,
                w.active_trials.len(),
                lease as f64 / 1000.0
            );
        }
    }
    if s.stale_claims > 0 {
        println!("  stale claims: {} (re-claimable; their workers look dead)", s.stale_claims);
    }
    println!("  summary.txt: {}", if s.summary_written { "written" } else { "pending" });
}

/// A `run` target is a TOML file path or a registry name.
fn load_target(target: &str, scale: Scale) -> Result<Scenario, String> {
    if std::path::Path::new(target).exists() {
        let text = std::fs::read_to_string(target).map_err(|e| format!("read {target}: {e}"))?;
        return Scenario::from_toml(&text).map_err(|e| format!("{target}: {e}"));
    }
    registry::builtin(target, scale).ok_or_else(|| {
        format!("{target:?} is neither a file nor a built-in; `campaign list` shows the built-ins")
    })
}

fn report(scenario: &Scenario, out: frlfi_campaign::CampaignOutcome, dir: &std::path::Path) {
    println!(
        "campaign {} ({:?}): {}/{} trials done ({} new) in {}",
        scenario.name,
        scenario.scale,
        out.completed_trials,
        out.total_trials,
        out.new_trials,
        dir.display(),
    );
    match out.table {
        Some(table) => print!("{table}"),
        None => println!("incomplete — continue with: campaign resume {}", dir.display()),
    }
}
