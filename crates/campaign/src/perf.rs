//! `campaign perf`: the campaign-level perf ledger — folds a
//! campaign's telemetry into a small, stable JSON record (per-phase
//! wall-clock, trials/s) and gates it against a committed baseline,
//! the campaign-level counterpart of the kernel bench gates.
//!
//! A record is measured from the same obs streams `campaign profile`
//! reads, so any campaign run with `--obs` can be gated. The baseline
//! file (`BENCH_campaign.json` at the repo root by convention) holds
//! one record per `(name, scale, mode)` triple — `mode` distinguishes
//! per-observation from `--batched` runs of the same scenario — and
//! `campaign perf <dir> --baseline <file> --gate <pct>` exits nonzero
//! when the current run is more than `pct` percent worse than the
//! matching record: lower `trials_per_s`, or a higher per-trial phase
//! cost for any phase the baseline spends at least 100 µs/trial on
//! (the floor keeps sub-noise phases from flapping the gate).

use std::collections::BTreeMap;
use std::path::Path;

use serde::{Map, Value};

use crate::fmt::json;
use crate::profile::{self, CheckMode};

/// Record schema version.
pub const PERF_SCHEMA: u64 = 1;

/// Phases below this per-trial baseline cost (µs) are excluded from
/// the per-phase gate: they are measurement noise at quick scales.
pub const PHASE_GATE_FLOOR_US: f64 = 100.0;

/// One folded perf record: what the ledger stores and the gate
/// compares.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfRecord {
    /// Scenario name (from the campaign manifest).
    pub name: String,
    /// Scenario scale, rendered (`Smoke`/`Bench`/`Full`).
    pub scale: String,
    /// Execution-mode tag: `per-obs` (default), `batched`, or any
    /// label the measuring pipeline chooses.
    pub mode: String,
    /// Completed trial spans across all workers.
    pub trials: u64,
    /// Campaign wall window (s), earliest to latest event.
    pub wall_s: f64,
    /// Observed aggregate completion rate.
    pub trials_per_s: f64,
    /// Total wall-clock per phase, seconds (spans + timers:
    /// `trial`, `train`, `eval`, `aggregate`, `io`, …).
    pub phase_s: BTreeMap<String, f64>,
    /// Per-trial phase cost in µs — the scale-independent number the
    /// gate compares.
    pub phase_us_per_trial: BTreeMap<String, f64>,
}

impl PerfRecord {
    /// Renders the record as a JSON object (sorted keys: stable
    /// output, byte-diffable in the ledger).
    pub fn to_value(&self) -> Value {
        let f64map = |m: &BTreeMap<String, f64>| {
            Value::Table(m.iter().map(|(k, &v)| (k.clone(), Value::Float(v))).collect::<Map>())
        };
        let mut m = Map::new();
        m.insert("schema".into(), Value::Int(PERF_SCHEMA as i64));
        m.insert("name".into(), Value::Str(self.name.clone()));
        m.insert("scale".into(), Value::Str(self.scale.clone()));
        m.insert("mode".into(), Value::Str(self.mode.clone()));
        m.insert("trials".into(), Value::Int(self.trials as i64));
        m.insert("wall_s".into(), Value::Float(self.wall_s));
        m.insert("trials_per_s".into(), Value::Float(self.trials_per_s));
        m.insert("phase_s".into(), f64map(&self.phase_s));
        m.insert("phase_us_per_trial".into(), f64map(&self.phase_us_per_trial));
        Value::Table(m)
    }

    /// Parses a record object.
    ///
    /// # Errors
    ///
    /// A missing or mistyped field.
    pub fn from_value(v: &Value) -> Result<PerfRecord, String> {
        let str_field = |k: &str| {
            v.get(k)
                .and_then(Value::as_str)
                .map(str::to_owned)
                .ok_or_else(|| format!("perf record missing string `{k}`"))
        };
        let num = |k: &str| {
            v.get(k)
                .and_then(|x| x.as_float().or_else(|| x.as_int().map(|n| n as f64)))
                .ok_or_else(|| format!("perf record missing number `{k}`"))
        };
        let f64map = |k: &str| -> Result<BTreeMap<String, f64>, String> {
            let Some(t) = v.get(k).and_then(Value::as_table) else {
                return Err(format!("perf record missing table `{k}`"));
            };
            t.iter()
                .map(|(name, x)| {
                    x.as_float()
                        .or_else(|| x.as_int().map(|n| n as f64))
                        .map(|f| (name.clone(), f))
                        .ok_or_else(|| format!("`{k}.{name}` is not a number"))
                })
                .collect()
        };
        Ok(PerfRecord {
            name: str_field("name")?,
            scale: str_field("scale")?,
            mode: str_field("mode").unwrap_or_else(|_| "per-obs".into()),
            trials: num("trials")? as u64,
            wall_s: num("wall_s")?,
            trials_per_s: num("trials_per_s")?,
            phase_s: f64map("phase_s")?,
            phase_us_per_trial: f64map("phase_us_per_trial")?,
        })
    }
}

/// Measures a perf record from campaign directory `dir`'s obs streams
/// and manifest. `mode` tags the record (`per-obs`, `batched`, …).
///
/// # Errors
///
/// An unreadable manifest, unreadable streams, or a campaign with no
/// completed trial spans (there is nothing to gate).
pub fn measure(dir: &Path, mode: &str) -> Result<PerfRecord, String> {
    let scenario = crate::runner::load_scenario(&dir.join("campaign.toml"))?;
    let profile = profile::load_dir(dir, CheckMode::Lenient)?;
    let trials = profile.trials();
    if trials == 0 {
        return Err(format!(
            "no trial spans under {}/obs — run the campaign with --obs first",
            dir.display()
        ));
    }
    let wall_s = profile.window_s();
    let trials_per_s = profile.rate().unwrap_or(0.0);
    let mut phase_us: BTreeMap<String, u64> = BTreeMap::new();
    for w in &profile.workers {
        for (name, &(_, us)) in &w.spans {
            *phase_us.entry(name.clone()).or_insert(0) += us;
        }
        for (name, &(_, us)) in &w.timers {
            *phase_us.entry(name.clone()).or_insert(0) += us;
        }
    }
    let phase_s = phase_us.iter().map(|(k, &us)| (k.clone(), us as f64 / 1e6)).collect();
    let phase_us_per_trial =
        phase_us.iter().map(|(k, &us)| (k.clone(), us as f64 / trials as f64)).collect();
    Ok(PerfRecord {
        name: scenario.name.clone(),
        scale: format!("{:?}", scenario.scale),
        mode: mode.to_owned(),
        trials,
        wall_s,
        trials_per_s,
        phase_s,
        phase_us_per_trial,
    })
}

/// Parses a baseline document: either one record object or a ledger
/// (`{"records": [...]}`), returning every record found.
///
/// # Errors
///
/// Unparseable JSON or a record missing required fields.
pub fn parse_baseline(text: &str) -> Result<Vec<PerfRecord>, String> {
    let doc = json::parse(text).map_err(|e| e.to_string())?;
    match doc.get("records").and_then(Value::as_array) {
        Some(records) => records.iter().map(PerfRecord::from_value).collect(),
        None => Ok(vec![PerfRecord::from_value(&doc)?]),
    }
}

/// Compares `current` against the matching baseline record; each
/// returned string names one regression beyond `gate_pct` percent.
/// An empty vec means the gate passes.
///
/// # Errors
///
/// No baseline record matches `(name, scale, mode)` — a silent pass
/// on a mismatched baseline would defeat the gate.
pub fn compare(
    current: &PerfRecord,
    baseline: &[PerfRecord],
    gate_pct: f64,
) -> Result<Vec<String>, String> {
    let base = baseline
        .iter()
        .find(|b| b.name == current.name && b.scale == current.scale && b.mode == current.mode)
        .ok_or_else(|| {
            format!(
                "no baseline record for ({}, {}, {}) — candidates: {}",
                current.name,
                current.scale,
                current.mode,
                baseline
                    .iter()
                    .map(|b| format!("({}, {}, {})", b.name, b.scale, b.mode))
                    .collect::<Vec<_>>()
                    .join(", ")
            )
        })?;
    let g = gate_pct / 100.0;
    let mut regressions = Vec::new();
    if base.trials_per_s > 0.0 && current.trials_per_s < base.trials_per_s * (1.0 - g) {
        regressions.push(format!(
            "trials/s regressed: {:.3} vs baseline {:.3} (gate {gate_pct}%)",
            current.trials_per_s, base.trials_per_s
        ));
    }
    for (phase, &base_us) in &base.phase_us_per_trial {
        if base_us < PHASE_GATE_FLOOR_US {
            continue;
        }
        let cur_us = current.phase_us_per_trial.get(phase).copied().unwrap_or(0.0);
        if cur_us > base_us * (1.0 + g) {
            regressions.push(format!(
                "phase `{phase}` regressed: {cur_us:.0} µs/trial vs baseline {base_us:.0} \
                 (gate {gate_pct}%)"
            ));
        }
    }
    Ok(regressions)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(rate: f64, io_us: f64) -> PerfRecord {
        PerfRecord {
            name: "fig3a".into(),
            scale: "Smoke".into(),
            mode: "per-obs".into(),
            trials: 12,
            wall_s: 2.0,
            trials_per_s: rate,
            phase_s: BTreeMap::from([("trial".into(), 1.0), ("io".into(), io_us * 12.0 / 1e6)]),
            phase_us_per_trial: BTreeMap::from([("trial".into(), 80_000.0), ("io".into(), io_us)]),
        }
    }

    #[test]
    fn record_round_trips_through_json() {
        let r = record(6.0, 500.0);
        let text = json::render(&r.to_value());
        let back = PerfRecord::from_value(&json::parse(&text).unwrap()).unwrap();
        assert_eq!(r, back);
        // Ledger form parses too.
        let ledger = format!("{{\"records\":[{text}]}}");
        assert_eq!(parse_baseline(&ledger).unwrap(), vec![r]);
    }

    #[test]
    fn gate_passes_within_tolerance_and_fails_beyond() {
        let base = vec![record(6.0, 500.0)];
        // 5% slower with a 20% gate: pass.
        assert!(compare(&record(5.7, 510.0), &base, 20.0).unwrap().is_empty());
        // Rate collapsed: fail.
        let r = compare(&record(2.0, 500.0), &base, 20.0).unwrap();
        assert!(r.iter().any(|m| m.contains("trials/s")), "{r:?}");
        // Phase blew up: fail.
        let r = compare(&record(6.0, 5000.0), &base, 20.0).unwrap();
        assert!(r.iter().any(|m| m.contains("`io`")), "{r:?}");
    }

    #[test]
    fn sub_floor_phases_do_not_flap_the_gate() {
        let mut base = record(6.0, 50.0); // io below the 100 µs floor
        base.phase_us_per_trial.insert("io".into(), 50.0);
        let mut cur = record(6.0, 50.0);
        cur.phase_us_per_trial.insert("io".into(), 90.0); // 80% "worse"
        assert!(compare(&cur, &[base], 20.0).unwrap().is_empty());
    }

    #[test]
    fn mismatched_baseline_is_an_error_not_a_pass() {
        let mut base = record(6.0, 500.0);
        base.mode = "batched".into();
        assert!(compare(&record(6.0, 500.0), &[base], 20.0).is_err());
    }
}
