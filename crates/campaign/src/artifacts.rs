//! Model-weight artifacts: the **train** half of the task-DAG queue.
//!
//! A study campaign (train-once / eval-many) splits its work into
//! *train tasks* — one per [`frlfi::experiments::study::StudyModel`] —
//! and *eval tasks* that only become claimable once every artifact has
//! landed. This module owns the on-disk artifact contract:
//!
//! ```text
//! <dir>/artifacts/model-<m>.bin — serialized weight planes (FRLW codec)
//! <dir>/artifacts.jsonl         — append-only publication records
//! ```
//!
//! ## Publish protocol
//!
//! [`publish`] writes the encoded planes to a worker-unique temp file
//! inside `artifacts/`, fsyncs it, and **renames** it into place — an
//! atomic publish through the chaos-aware [`crate::io`] shim (tags
//! `artifact.create` / `artifact.write` / `artifact.fsync` /
//! `artifact.rename`, whole unit retried under `artifact.publish`).
//! Only then is an [`ArtifactRecord`] appended to `artifacts.jsonl`
//! (tag `artifacts.append`), so a record implies a fully durable
//! artifact file. Readers therefore gate on the *record*, and verify
//! the file against the record's digest before trusting it.
//!
//! ## Why duplicate publishes are benign
//!
//! Training is a pure function of the study geometry (fixed model,
//! fixed seeds), so two workers racing the same train task — a reaped
//! lease, a slow trainer finishing late — produce **byte-identical**
//! artifacts. The loser's rename atomically replaces the file with
//! the same bytes, its record appends with the same digest, and
//! readers take the first record per model. "Train exactly once" is
//! the no-fault guarantee the claim log provides; under faults the
//! fallback is "train again, bitwise-identically", never "corrupt".

use std::path::{Path, PathBuf};

use frlfi::nn::{decode_weight_planes, encode_weight_planes, weight_digest};
use serde::{Map, Value};

use crate::coord::{append_jsonl_line, now_ms, FoldError, JsonlTailReader};
use crate::fmt::json;
use crate::io;

/// File name of the artifact publication log inside a campaign
/// directory.
pub const ARTIFACTS_FILE: &str = "artifacts.jsonl";

/// Directory name of the weight-artifact files inside a campaign
/// directory.
pub const ARTIFACTS_DIR: &str = "artifacts";

/// Path of model `m`'s weight artifact inside campaign directory
/// `dir`.
pub fn model_path(dir: &Path, m: usize) -> PathBuf {
    dir.join(ARTIFACTS_DIR).join(format!("model-{m}.bin"))
}

/// One publication record: which model landed, the FNV-1a digest of
/// its artifact bytes, who trained it, and when.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArtifactRecord {
    /// Model index into the study geometry's
    /// [`models`](frlfi::experiments::study::StudyGeometry::models).
    pub model: usize,
    /// [`weight_digest`] of the artifact file's bytes — what readers
    /// verify before trusting the file.
    pub digest: u64,
    /// Worker that trained and published the model.
    pub worker: String,
    /// Publication time (ms since the Unix epoch). Informational.
    pub ts_ms: u64,
}

impl ArtifactRecord {
    fn to_value(&self) -> Value {
        let mut m = Map::new();
        m.insert("model".into(), Value::Int(self.model as i64));
        // u64 digests round-trip through JSON i64 bit-exactly, the
        // same convention trial-record seeds use.
        m.insert("digest".into(), Value::Int(self.digest as i64));
        m.insert("worker".into(), Value::Str(self.worker.clone()));
        m.insert("ts_ms".into(), Value::Int(self.ts_ms as i64));
        Value::Table(m)
    }

    fn from_value(v: &Value) -> Result<Self, String> {
        let get_int = |k: &str| {
            v.get(k)
                .and_then(Value::as_int)
                .ok_or_else(|| format!("artifact record missing integer `{k}`"))
        };
        let model = get_int("model")?;
        if model < 0 {
            return Err(format!("artifact record `model` must be ≥ 0, got {model}"));
        }
        let worker = match v.get("worker") {
            Some(Value::Str(s)) => s.clone(),
            _ => return Err("artifact record missing string `worker`".into()),
        };
        Ok(ArtifactRecord {
            model: model as usize,
            digest: get_int("digest")? as u64,
            worker,
            ts_ms: get_int("ts_ms")? as u64,
        })
    }
}

/// Atomically publishes model `m`'s trained weight planes into
/// campaign directory `dir` and records the publication: encode →
/// temp file → write → fsync → rename → append + fsync the record.
/// Returns the digest recorded (and verified by every reader).
///
/// # Errors
///
/// Returns a message once the [`crate::io`] retry budget is spent on
/// any step — the caller's cue to quarantine the train task (which
/// deterministically poisons its dependent eval tasks).
pub fn publish(dir: &Path, model: usize, planes: &[Vec<f32>], worker: &str) -> Result<u64, String> {
    let bytes = encode_weight_planes(planes);
    let digest = weight_digest(&bytes);
    let final_path = model_path(dir, model);
    let tmp_path = dir.join(ARTIFACTS_DIR).join(format!(".model-{model}.tmp-{}", worker));
    io::with_retry("artifact.publish", || {
        // The whole unit is idempotent: a retry recreates the temp
        // file from scratch, and rename atomically replaces whatever
        // landed before (byte-identical by purity of training).
        io::create_dir_all("artifact.create", &dir.join(ARTIFACTS_DIR))?;
        let mut file = io::create_trunc("artifact.create", &tmp_path)?;
        io::write_all("artifact.write", &mut file, &bytes)?;
        io::sync_all("artifact.fsync", &file)?;
        io::rename("artifact.rename", &tmp_path, &final_path)
    })
    .map_err(|e| format!("publish {}: {e}", final_path.display()))?;
    let record = ArtifactRecord { model, digest, worker: worker.to_owned(), ts_ms: now_ms() };
    let line = json::render(&record.to_value());
    let log_path = dir.join(ARTIFACTS_FILE);
    io::with_retry("artifacts.append", || {
        let mut file = io::open_append("artifacts.append", &log_path)?;
        append_jsonl_line("artifacts.append", &mut file, &line)
    })
    .map_err(|e| format!("append {}: {e}", log_path.display()))?;
    Ok(digest)
}

/// Loads every parseable artifact record (lenient, like every shared
/// log: torn or healed garbage lines are skipped with a warning).
/// Missing file means nothing published yet.
///
/// # Errors
///
/// Returns a message only for I/O failures.
pub fn load_records(dir: &Path) -> Result<Vec<ArtifactRecord>, String> {
    let mut records = Vec::new();
    JsonlTailReader::new(dir.join(ARTIFACTS_FILE), "artifacts.read").refresh(|v| {
        records.push(ArtifactRecord::from_value(&v).map_err(FoldError::Skip)?);
        Ok(())
    })?;
    Ok(records)
}

/// An incrementally folded view of the publication log: which of a
/// study's models have landed, and with which digest. The first
/// record per model wins (later duplicates are byte-identical by
/// purity of training — see the module docs).
pub struct ArtifactTracker {
    tail: JsonlTailReader,
    published: Vec<Option<u64>>,
}

impl ArtifactTracker {
    /// A tracker over campaign directory `dir` for a study with
    /// `n_models` models.
    pub fn new(dir: &Path, n_models: usize) -> Self {
        ArtifactTracker {
            tail: JsonlTailReader::new(dir.join(ARTIFACTS_FILE), "artifacts.read"),
            published: vec![None; n_models],
        }
    }

    /// Folds every record appended since the last refresh. Records
    /// naming a model outside the study are skipped with a warning
    /// (advisory log, same policy as claims).
    ///
    /// # Errors
    ///
    /// Returns a message on I/O failures.
    pub fn refresh(&mut self) -> Result<(), String> {
        let published = &mut self.published;
        self.tail.refresh(|v| {
            let r = ArtifactRecord::from_value(&v).map_err(FoldError::Skip)?;
            match published.get_mut(r.model) {
                None => Err(FoldError::Skip(format!(
                    "artifact record names model {} outside the study's {} model(s)",
                    r.model,
                    published.len()
                ))),
                Some(slot) => {
                    slot.get_or_insert(r.digest);
                    Ok(())
                }
            }
        })
    }

    /// The recorded digest of model `m`, if published.
    pub fn digest(&self, m: usize) -> Option<u64> {
        self.published.get(m).copied().flatten()
    }

    /// How many of the study's models have landed.
    pub fn published_count(&self) -> usize {
        self.published.iter().filter(|d| d.is_some()).count()
    }

    /// Whether every model artifact has landed — the dependency gate
    /// that makes eval tasks claimable.
    pub fn all_published(&self) -> bool {
        self.published.iter().all(Option::is_some)
    }

    /// Model indices still missing a publication record — the
    /// unsatisfied dependencies blocking every eval task.
    pub fn missing(&self) -> Vec<usize> {
        (0..self.published.len()).filter(|&m| self.published[m].is_none()).collect()
    }
}

/// Loads and verifies model `m`'s weight artifact: reads the file,
/// checks its bytes against `expect_digest` (from the publication
/// record), and decodes the planes.
///
/// # Errors
///
/// Returns a message on I/O failure, digest mismatch (a torn or
/// foreign file — the record, not the file, is the source of truth),
/// or codec corruption. Callers fall back to retraining in-process,
/// which is bitwise-identical by purity.
pub fn load_planes(dir: &Path, m: usize, expect_digest: u64) -> Result<Vec<Vec<f32>>, String> {
    let path = model_path(dir, m);
    let bytes = io::with_retry("artifact.read", || {
        let mut file = io::open_read("artifact.read", &path)?;
        let mut buf = Vec::new();
        io::read_to_end("artifact.read", &mut file, &mut buf)?;
        Ok(buf)
    })
    .map_err(|e| format!("read {}: {e}", path.display()))?;
    let digest = weight_digest(&bytes);
    if digest != expect_digest {
        return Err(format!(
            "{}: digest {digest:#018x} does not match the published record {expect_digest:#018x} \
             (torn or stale artifact file)",
            path.display()
        ));
    }
    decode_weight_planes(&bytes).map_err(|e| format!("decode {}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static N: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "frlfi-artifacts-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create temp dir");
        dir
    }

    fn planes(salt: f32) -> Vec<Vec<f32>> {
        vec![vec![1.5 + salt, -2.25, 0.0], vec![salt; 5]]
    }

    #[test]
    fn publish_then_load_round_trips_bitwise() {
        let dir = temp_dir("roundtrip");
        let digest = publish(&dir, 0, &planes(0.5), "w1").expect("publish");
        let records = load_records(&dir).expect("records");
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].model, 0);
        assert_eq!(records[0].digest, digest);
        assert_eq!(records[0].worker, "w1");
        let back = load_planes(&dir, 0, digest).expect("load");
        assert_eq!(back, planes(0.5));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn duplicate_publish_is_benign_and_first_record_wins() {
        let dir = temp_dir("dup");
        let d1 = publish(&dir, 0, &planes(1.0), "w1").expect("publish");
        let d2 = publish(&dir, 0, &planes(1.0), "w2").expect("republish");
        assert_eq!(d1, d2, "identical planes publish identical digests");
        let mut tracker = ArtifactTracker::new(&dir, 1);
        tracker.refresh().expect("refresh");
        assert_eq!(tracker.digest(0), Some(d1));
        assert!(tracker.all_published());
        assert_eq!(load_records(&dir).expect("records").len(), 2, "the log keeps both");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tracker_gates_on_every_model_and_skips_foreign_records() {
        let dir = temp_dir("gate");
        let mut tracker = ArtifactTracker::new(&dir, 2);
        tracker.refresh().expect("empty");
        assert!(!tracker.all_published());
        assert_eq!(tracker.missing(), vec![0, 1]);
        publish(&dir, 1, &planes(2.0), "w1").expect("publish");
        // A record naming a model outside the study is advisory noise.
        let mut f =
            std::fs::OpenOptions::new().append(true).open(dir.join(ARTIFACTS_FILE)).expect("open");
        writeln!(f, "{{\"model\":9,\"digest\":1,\"worker\":\"x\",\"ts_ms\":0}}").expect("write");
        drop(f);
        tracker.refresh().expect("refresh");
        assert_eq!(tracker.missing(), vec![0], "model 1 landed, model 0 still blocks");
        assert_eq!(tracker.published_count(), 1);
        publish(&dir, 0, &planes(3.0), "w2").expect("publish");
        tracker.refresh().expect("refresh");
        assert!(tracker.all_published());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn digest_mismatch_and_codec_corruption_are_typed_failures() {
        let dir = temp_dir("verify");
        let digest = publish(&dir, 0, &planes(4.0), "w1").expect("publish");
        let err = load_planes(&dir, 0, digest ^ 1).expect_err("wrong digest");
        assert!(err.contains("digest"), "{err}");
        // Truncate the artifact: the digest check catches it before
        // the codec ever runs.
        let path = model_path(&dir, 0);
        let bytes = std::fs::read(&path).expect("read");
        std::fs::write(&path, &bytes[..bytes.len() / 2]).expect("truncate");
        let err = load_planes(&dir, 0, digest).expect_err("torn file");
        assert!(err.contains("digest"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
