//! The sharded, resumable campaign runner.
//!
//! A campaign directory is the unit of persistence:
//!
//! ```text
//! <dir>/campaign.toml    — scenario snapshot (written once, verified on resume)
//! <dir>/trials.jsonl     — one JSON record per completed (cell, repeat) trial
//! <dir>/artifacts/       — study campaigns: one frozen weight file per model
//! <dir>/artifacts.jsonl  — study campaigns: append-only publication records
//! <dir>/summary.txt      — rendered result table (written when complete)
//! ```
//!
//! Work is sharded `(cell × repeat)` across worker threads through an
//! atomic cursor; every trial's seed follows the campaign's
//! [`Campaign::trial_seed`] scheme (`derive_seed(master, cell *
//! repeats + repeat)` for classic sweeps, the study geometry's
//! row-seed streams for studies), so a campaign interrupted at any
//! point and resumed — with any thread count — replays the missing
//! trials with identical seeds. Final per-cell statistics fold the
//! persisted values in repeat order through
//! [`frlfi_fault::aggregate_in_order`], which is bit-identical to
//! what the in-process `sweep` engine produces for the same trials.
//!
//! **Study campaigns** (`fig4`, `fig8a/b`, `datatypes`, `layers`)
//! expand into a small task DAG instead of a flat sweep: **train**
//! tasks publish each model's weights atomically through
//! [`crate::artifacts`], and **eval** trials only become claimable
//! once every artifact record has landed — the weights are loaded
//! (digest-verified) instead of retrained, so each model trains
//! exactly once per campaign however many workers join. A failed
//! train task is quarantined and deterministically poisons its
//! dependent evals (degraded summary, nonzero exit); because training
//! is a pure function of the geometry, a later healthy run retrains
//! bitwise-identically and completes the campaign.

use std::collections::BTreeSet;
use std::io::Read;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

use frlfi::report::Table;
use frlfi_fault::{aggregate_in_order, CellStats};
use serde::{Map, Value};

use crate::coord::{CoordConfig, Coordinator};
use crate::fmt::json;
use crate::io::{self, lock_recover};
use crate::quarantine::{self, QuarantineKind, QuarantineRecord};
use crate::spec::{Campaign, CellGrid, Scenario};

/// How a runner coordinates trial ownership with other processes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub enum CoordMode {
    /// This process assumes it is the only writer of the campaign
    /// directory: trials shard over threads through an in-memory
    /// cursor, with no claim log.
    #[default]
    Exclusive,
    /// The campaign directory is a shared work queue: trials are
    /// acquired through the `claims.jsonl` lease protocol (see
    /// [`crate::coord`]), so any number of `campaign run --shared` /
    /// `campaign worker` processes — across cores, cgroups or machines
    /// sharing the filesystem — split one campaign. Statistics and
    /// `summary.txt` are byte-identical to an [`CoordMode::Exclusive`]
    /// single-thread run.
    Shared(CoordConfig),
}

/// Runner options.
#[derive(Debug, Clone, Default)]
pub struct RunnerConfig {
    /// Worker threads (0 = available parallelism).
    pub threads: usize,
    /// Stop after this many *new* trials (used to exercise the
    /// interrupt/resume path; `None` = run to completion).
    pub max_new_trials: Option<usize>,
    /// Batched mode: workers claim `(cell, repeat)` trials exactly as
    /// in per-observation mode, but each trial runs through
    /// [`crate::Campaign::run_trials_batched`] — training routes its
    /// forwards/backwards through the [`frlfi::nn::BatchInferCtx`]
    /// cached-activation arena kernels, and the post-training
    /// evaluation executes its episodes in lock-step on the same
    /// arena. Trial values, the persisted log and the final statistics
    /// are bit-identical to the per-observation mode — only throughput
    /// changes, so the two modes mix freely across resume sessions.
    pub batched: bool,
    /// Append the wide per-cell statistics table (mean / min / max /
    /// 95% CI half-width over repeats) to `summary.txt` after the
    /// standard means grid.
    pub wide_summary: bool,
    /// Multi-process coordination mode. Per-observation and batched
    /// trials claim work through the same path in either mode.
    pub coord: CoordMode,
    /// Stream structured observability events — trial/train/eval
    /// spans, io/aggregate timers, kernel-dispatch counters (see
    /// [`frlfi_obs`]) — to `<dir>/obs/worker-<id>.jsonl` for the
    /// duration of this call. Purely additive: trial values, the
    /// persisted trial log and `summary.txt` stay byte-identical
    /// whether the recorder is on or off.
    pub obs: bool,
    /// Treat a degraded outcome (some trials quarantined after their
    /// I/O retries exhausted, queue otherwise drained) as success:
    /// the run returns `Ok` with the explicitly marked degraded
    /// `summary.txt` in place, instead of the default nonzero-exit
    /// error. The quarantined trials stay reclaimable either way.
    pub allow_partial: bool,
}

/// RAII guard for the process-global [`frlfi_obs`] recorder: when
/// [`RunnerConfig::obs`] is set, installs a JSONL sink at
/// `<dir>/obs/worker-<id>.jsonl` for the duration of one run call.
/// Shared mode reuses the coordinator's worker id so profile rows
/// line up with the claim log; exclusive mode tags the process
/// (`x<pid>`). Dropping the guard flushes and closes the sink, so
/// events never leak into a later campaign run in the same process.
struct ObsSession {
    active: bool,
}

impl ObsSession {
    fn start(dir: &Path, cfg: &RunnerConfig) -> Result<ObsSession, String> {
        if !cfg.obs {
            return Ok(ObsSession { active: false });
        }
        let worker = match &cfg.coord {
            CoordMode::Shared(c) => c.worker_id.clone(),
            CoordMode::Exclusive => format!("x{}", std::process::id()),
        };
        let path = dir.join(crate::profile::OBS_DIR).join(format!("worker-{worker}.jsonl"));
        frlfi_obs::install(&path, &worker)
            .map_err(|e| format!("open obs stream {}: {e}", path.display()))?;
        Ok(ObsSession { active: true })
    }
}

impl Drop for ObsSession {
    fn drop(&mut self) {
        if self.active {
            frlfi_obs::uninstall();
        }
    }
}

/// One persisted trial result.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialRecord {
    /// Cell index (row-major in the campaign's grid).
    pub cell: usize,
    /// Repeat index within the cell.
    pub repeat: usize,
    /// The derived seed the trial ran with.
    pub seed: u64,
    /// The trial's metric value.
    pub value: f64,
}

impl TrialRecord {
    fn to_value(&self) -> Value {
        let mut m = Map::new();
        m.insert("cell".into(), Value::Int(self.cell as i64));
        m.insert("repeat".into(), Value::Int(self.repeat as i64));
        m.insert("seed".into(), Value::Int(self.seed as i64));
        m.insert("value".into(), Value::Float(self.value));
        Value::Table(m)
    }

    fn from_value(v: &Value) -> Result<Self, String> {
        let get_int = |k: &str| {
            v.get(k)
                .and_then(Value::as_int)
                .ok_or_else(|| format!("trial record missing integer `{k}`"))
        };
        // `cell` / `repeat` are indices: a negative value in a corrupt
        // log must be rejected here, not wrapped by an `as usize` cast
        // into a huge index that [`record_flat_index`] then blames on
        // the wrong campaign. (`seed` legitimately round-trips through
        // i64: u64 seeds above i64::MAX serialize negative.)
        let get_index = |k: &str| -> Result<usize, String> {
            let i = get_int(k)?;
            usize::try_from(i)
                .map_err(|_| format!("trial record `{k}` = {i} is negative — corrupt record"))
        };
        let value = match v.get("value") {
            Some(Value::Float(f)) => *f,
            Some(Value::Int(i)) => *i as f64,
            _ => return Err("trial record missing number `value`".into()),
        };
        Ok(TrialRecord {
            cell: get_index("cell")?,
            repeat: get_index("repeat")?,
            seed: get_int("seed")? as u64,
            value,
        })
    }
}

/// The outcome of a run/resume call.
#[derive(Debug, Clone)]
pub struct CampaignOutcome {
    /// Trials completed across all sessions (persisted).
    pub completed_trials: usize,
    /// Trials the whole campaign needs.
    pub total_trials: usize,
    /// Trials this call executed.
    pub new_trials: usize,
    /// Per-cell statistics — present only when the campaign completed.
    pub stats: Option<Vec<CellStats>>,
    /// Rendered result table — present only when the campaign completed.
    pub table: Option<Table>,
    /// Wide per-cell spread table — present only when the campaign
    /// completed *and* [`RunnerConfig::wide_summary`] was set.
    pub wide_table: Option<Table>,
    /// Flat indices of trials *this call* quarantined after
    /// exhausting their I/O retry budget (sorted). Non-empty only on
    /// degraded outcomes — which return `Ok` solely under
    /// [`RunnerConfig::allow_partial`].
    pub quarantined: Vec<usize>,
}

impl CampaignOutcome {
    /// Whether every (cell × repeat) trial is persisted.
    pub fn complete(&self) -> bool {
        self.completed_trials == self.total_trials
    }
}

/// Runs a scenario in `dir`, resuming any persisted progress.
///
/// First call writes `campaign.toml`; later calls verify the stored
/// scenario matches and skip completed `(cell, repeat)` trials.
///
/// # Errors
///
/// Returns a message on I/O failures, scenario mismatches, or corrupt
/// trial logs.
pub fn run(scenario: &Scenario, dir: &Path, cfg: &RunnerConfig) -> Result<CampaignOutcome, String> {
    io::with_retry("campaign.create", || io::create_dir_all("campaign.create", dir))
        .map_err(|e| format!("create {}: {e}", dir.display()))?;
    let manifest = dir.join("campaign.toml");
    if manifest.exists() {
        let stored = load_scenario(&manifest)?;
        if &stored != scenario {
            return Err(format!(
                "{} holds a different campaign ({} @ {:?}); refusing to mix trial logs",
                dir.display(),
                stored.name,
                stored.scale,
            ));
        }
    } else {
        // Atomic publish: a concurrently joining worker either sees
        // no manifest yet or a complete one, never a torn prefix. Two
        // processes racing `run --shared` both publish identical
        // bytes, so last-rename-wins is harmless.
        write_atomic(dir, "campaign.toml", &scenario.to_toml())?;
    }

    let campaign = scenario.expand().map_err(|e| e.to_string())?;
    run_expanded(&campaign, dir, cfg)
}

/// Resumes the campaign persisted in `dir`.
///
/// # Errors
///
/// As for [`run`]; additionally errors if `dir` has no manifest.
pub fn resume(dir: &Path, cfg: &RunnerConfig) -> Result<CampaignOutcome, String> {
    let scenario = load_scenario(&dir.join("campaign.toml"))?;
    run(&scenario, dir, cfg)
}

/// Loads the scenario manifest of a campaign directory.
///
/// # Errors
///
/// Returns a message if the manifest is missing or malformed.
pub fn load_scenario(manifest: &Path) -> Result<Scenario, String> {
    let text = io::with_retry("manifest.read", || io::read_to_string("manifest.read", manifest))
        .map_err(|e| format!("read {}: {e}", manifest.display()))?;
    Scenario::from_toml(&text).map_err(|e| format!("{}: {e}", manifest.display()))
}

fn trials_path(dir: &Path) -> PathBuf {
    dir.join("trials.jsonl")
}

/// How [`load_records`] treats lines it cannot parse.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LoadPolicy {
    /// Exclusive-writer semantics: a torn *trailing* line (the
    /// crash-interrupted write) is skipped with a warning and the
    /// trial re-runs; a corrupt *interior* line is a hard error naming
    /// its line number — with one writer, interior damage means the
    /// log was edited or belongs to something else.
    Strict,
    /// Shared-queue semantics: any unparseable line is skipped with a
    /// warning naming its line number. With concurrent writers a
    /// killed process's torn tail gets healed into an interior line by
    /// the next appender, so interior damage is expected; skipping is
    /// safe because the dropped trial re-runs bitwise-identically.
    Lenient,
}

/// Reads the persisted trial log under `policy`. Returns the records
/// plus the byte length of the parsed prefix — the exclusive-mode
/// caller truncates any torn tail off before appending, so the
/// fragment can never merge with the next record into one corrupt
/// interior line.
fn load_records(dir: &Path, policy: LoadPolicy) -> Result<(Vec<TrialRecord>, u64), String> {
    let path = trials_path(dir);
    let text = match io::with_retry("trials.read", || match io::open_read("trials.read", &path) {
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
        Err(e) => Err(e),
        Ok(mut f) => {
            let mut text = String::new();
            f.read_to_string(&mut text)?;
            Ok(Some(text))
        }
    }) {
        Err(e) => return Err(format!("read {}: {e}", path.display())),
        Ok(None) => return Ok((Vec::new(), 0)),
        Ok(Some(text)) => text,
    };
    let mut records = Vec::new();
    let mut valid_len = 0u64;
    let pieces: Vec<&str> = text.split_inclusive('\n').collect();
    for (i, piece) in pieces.iter().enumerate() {
        let line = piece.trim();
        if line.is_empty() {
            valid_len += piece.len() as u64;
            continue;
        }
        match json::parse(line).map_err(|e| e.to_string()).and_then(|v| TrialRecord::from_value(&v))
        {
            Ok(r) => {
                records.push(r);
                valid_len += piece.len() as u64;
            }
            Err(e) if i + 1 == pieces.len() || policy == LoadPolicy::Lenient => {
                frlfi_obs::warn!(
                    "{} line {}: {e}; skipping record (the trial will \
                     re-run with an identical seed, so statistics are unaffected)",
                    path.display(),
                    i + 1
                );
            }
            Err(e) => return Err(format!("{} line {}: {e}", path.display(), i + 1)),
        }
    }
    Ok((records, valid_len))
}

/// Validates one persisted record's coordinates and seed against the
/// campaign's seed scheme (a mismatch means the log belongs to a
/// different campaign) and returns its flat trial index.
fn record_flat_index(campaign: &Campaign, r: &TrialRecord) -> Result<usize, String> {
    let n_cells = campaign.trials.len();
    let repeats = campaign.repeats;
    if r.cell >= n_cells || r.repeat >= repeats {
        return Err(format!(
            "trial log refers to (cell {}, repeat {}) outside the {}×{} campaign — \
             wrong directory?",
            r.cell, r.repeat, n_cells, repeats
        ));
    }
    let flat = r.cell * repeats + r.repeat;
    let expect_seed = campaign.trial_seed(flat);
    if r.seed != expect_seed {
        return Err(format!(
            "trial log seed {:#x} for (cell {}, repeat {}) does not match the campaign \
             master seed scheme (expected {:#x})",
            r.seed, r.cell, r.repeat, expect_seed
        ));
    }
    Ok(flat)
}

/// Folds persisted records into the per-`(cell, repeat)` completion
/// map. Duplicate records — possible when a reaped shared-mode trial
/// was finished by both workers — are benign: determinism makes them
/// bitwise-identical, and later ones overwrite.
fn fold_records(
    campaign: &Campaign,
    records: Vec<TrialRecord>,
) -> Result<Vec<Vec<Option<f64>>>, String> {
    let mut done: Vec<Vec<Option<f64>>> = vec![vec![None; campaign.repeats]; campaign.trials.len()];
    for r in records {
        record_flat_index(campaign, &r)?;
        done[r.cell][r.repeat] = Some(r.value);
    }
    Ok(done)
}

/// An incrementally folded completion view of `trials.jsonl` for the
/// shared run loop: a [`crate::coord::JsonlTailReader`] whose fold
/// validates each record and marks its flat trial done, so a
/// worker's per-claim poll costs O(new records), not O(log). Safe
/// because shared mode never truncates the log.
struct TrialTracker {
    tail: crate::coord::JsonlTailReader,
    done: Vec<bool>,
    completed: usize,
}

impl TrialTracker {
    fn new(dir: &Path, total: usize) -> Self {
        TrialTracker {
            tail: crate::coord::JsonlTailReader::new(trials_path(dir), "trials.read"),
            done: vec![false; total],
            completed: 0,
        }
    }

    /// Folds every complete line appended since the last refresh. A
    /// record that is not shaped like a trial record is skipped (it
    /// re-runs bitwise-identically); one with wrong coordinates or
    /// seed is fatal — the log belongs to a different campaign.
    fn refresh(&mut self, campaign: &Campaign) -> Result<(), String> {
        use crate::coord::FoldError;
        let done = &mut self.done;
        let completed = &mut self.completed;
        self.tail.refresh(|v| {
            let r = TrialRecord::from_value(&v).map_err(FoldError::Skip)?;
            let flat = record_flat_index(campaign, &r).map_err(FoldError::Fatal)?;
            if !done[flat] {
                done[flat] = true;
                *completed += 1;
            }
            Ok(())
        })
    }
}

/// Resolves a thread-count option (0 = available parallelism).
fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
    } else {
        threads
    }
}

/// Publishes `dir/<name>` atomically (unique temp file, fsync,
/// rename), so a reader — or a concurrent shared-mode process
/// publishing the identical bytes — never observes a torn file, and
/// a machine-level crash after the rename cannot surface an empty
/// one (the data is durable before the name is).
fn write_atomic(dir: &Path, name: &str, text: &str) -> Result<(), String> {
    let tmp = dir.join(format!(".{name}.tmp-{}", std::process::id()));
    // The whole create-write-fsync-rename step retries as one unit:
    // it is idempotent (the temp file is recreated from scratch each
    // attempt), so a transient fault at any of its operations — a
    // short write included — never publishes a torn file.
    io::with_retry("publish", || {
        let mut f = io::create_trunc("publish.create", &tmp)?;
        io::write_all("publish.write", &mut f, text.as_bytes())?;
        io::sync_all("publish.fsync", &f)?;
        drop(f);
        io::rename("publish.rename", &tmp, &dir.join(name))
    })
    .map_err(|e| format!("publish {name}: {e}"))
}

/// The flat completion map (`cell * repeats + repeat` order) of the
/// campaign persisted in `dir`, read leniently — the view `campaign
/// status` and the shared-mode claim loop work from.
pub(crate) fn completed_trials(
    campaign: &Campaign,
    dir: &Path,
) -> Result<Vec<Option<f64>>, String> {
    let (records, _) = load_records(dir, LoadPolicy::Lenient)?;
    Ok(fold_records(campaign, records)?.into_iter().flatten().collect())
}

fn run_expanded(
    campaign: &Campaign,
    dir: &Path,
    cfg: &RunnerConfig,
) -> Result<CampaignOutcome, String> {
    let _obs = ObsSession::start(dir, cfg)?;
    match &cfg.coord {
        CoordMode::Exclusive => run_exclusive(campaign, dir, cfg),
        CoordMode::Shared(coord_cfg) => run_shared(campaign, dir, cfg, coord_cfg),
    }
}

fn run_exclusive(
    campaign: &Campaign,
    dir: &Path,
    cfg: &RunnerConfig,
) -> Result<CampaignOutcome, String> {
    let repeats = campaign.repeats;
    let total = campaign.total_trials();

    // Completed-trial map from the persisted log. The policy follows
    // the *directory's history*, not this call's mode: a campaign
    // that has ever run shared (claims.jsonl present) may carry
    // healed interior fragments from SIGKILLed workers, so its log
    // reads leniently even on an exclusive resume; a never-shared log
    // gets the strict single-writer integrity check.
    let policy = if dir.join(crate::coord::CLAIMS_FILE).exists() {
        LoadPolicy::Lenient
    } else {
        LoadPolicy::Strict
    };
    let (records, valid_len) = load_records(dir, policy)?;
    let mut done = fold_records(campaign, records)?;
    let mut completed = done.iter().flatten().filter(|v| v.is_some()).count();

    // Pending work, bounded by any interrupt budget.
    let mut pending: Vec<(usize, usize)> = Vec::with_capacity(total - completed);
    for (cell, cell_done) in done.iter().enumerate() {
        for (rep, slot) in cell_done.iter().enumerate() {
            if slot.is_none() {
                pending.push((cell, rep));
            }
        }
    }
    if let Some(cap) = cfg.max_new_trials {
        pending.truncate(cap);
    }

    let new_trials = pending.len();
    let mut quarantined: Vec<usize> = Vec::new();
    if new_trials > 0 {
        // Study campaigns run their train tasks first: every eval task
        // below is gated on its model artifact landing in the campaign
        // directory, and a failed train task deterministically poisons
        // all of its dependent evals (degraded summary, nonzero exit).
        let study = match campaign.study() {
            None => None,
            Some(g) => {
                let worker = format!("x{}", std::process::id());
                match ensure_artifacts(g, dir, &worker) {
                    Ok(planes) => Some((g, planes)),
                    Err((model, e)) => {
                        quarantine_train_task(dir, g, model, &worker, e);
                        let poisoned = undone_flats(&done, repeats);
                        return finalize(campaign, dir, cfg, &done, completed, 0, poisoned);
                    }
                }
            }
        };
        let mut file =
            io::with_retry("trials.open", || io::open_append("trials.open", &trials_path(dir)))
                .map_err(|e| format!("open {}: {e}", trials_path(dir).display()))?;
        match policy {
            // Chop any torn tail off before appending, so the fragment
            // cannot merge with the next record into one corrupt line.
            // Only valid under the strict read: there `valid_len` is a
            // clean prefix (bad bytes can only be the tail).
            LoadPolicy::Strict => {
                if file.metadata().map_err(|e| format!("stat trial log: {e}"))?.len() > valid_len {
                    file.set_len(valid_len).map_err(|e| format!("truncate torn trial log: {e}"))?;
                }
            }
            // A shared-history log is never truncated (skipped lines
            // may sit anywhere); heal a torn tail into its own line
            // instead, as shared-mode appenders do.
            LoadPolicy::Lenient => {
                if !crate::coord::ends_with_newline(&mut file)
                    .map_err(|e| format!("{}: {e}", trials_path(dir).display()))?
                {
                    io::with_retry("trials.append", || {
                        io::write_all("trials.append", &mut file, b"\n")
                    })
                    .map_err(|e| format!("heal torn trial log: {e}"))?;
                }
            }
        }
        // The commit sink tracks the committed byte length alongside
        // the handle: under the strict single-writer policy a retry
        // truncates any short-written fragment of the failed attempt
        // back off before rewriting, so the log stays the clean
        // record-per-line prefix the strict loader demands on the
        // next resume.
        let sink = Mutex::new((file, valid_len));
        let cursor = AtomicUsize::new(0);
        let threads = resolve_threads(cfg.threads);
        let fresh: Mutex<Vec<(usize, usize, f64)>> = Mutex::new(Vec::with_capacity(new_trials));
        let poisoned: Mutex<BTreeSet<usize>> = Mutex::new(BTreeSet::new());
        // Persists one finished trial: line-atomic append + fsync
        // under the retry policy, so a kill between records loses at
        // most the torn tail and a transient I/O error costs only a
        // backoff sleep.
        let commit = |cell: usize, rep: usize, seed: u64, value: f64| -> Result<(), String> {
            let record = TrialRecord { cell, repeat: rep, seed, value };
            let line = json::render(&record.to_value());
            {
                let _io = frlfi_obs::timed("io");
                let mut guard = lock_recover(&sink);
                let (file, committed_len) = &mut *guard;
                io::with_retry("trials.append", || match policy {
                    LoadPolicy::Strict => {
                        if file.metadata()?.len() > *committed_len {
                            file.set_len(*committed_len)?;
                        }
                        let mut buf = Vec::with_capacity(line.len() + 1);
                        buf.extend_from_slice(line.as_bytes());
                        buf.push(b'\n');
                        io::write_all("trials.append", file, &buf)?;
                        io::sync_data("trials.append", file)?;
                        *committed_len += buf.len() as u64;
                        Ok(())
                    }
                    // A shared-history log is never truncated; retries
                    // heal a short-written fragment into its own
                    // skippable line, as shared-mode appenders do.
                    LoadPolicy::Lenient => {
                        crate::coord::append_jsonl_line("trials.append", file, &line)
                    }
                })
                .map_err(|e| format!("append {}: {e}", trials_path(dir).display()))?;
            }
            lock_recover(&fresh).push((cell, rep, value));
            Ok(())
        };
        // The retry budget is spent: record the poison trial durably
        // and move on — the rest of the queue still deserves to run.
        let quarantine_trial = |cell: usize, rep: usize, e: String| {
            let flat = cell * repeats + rep;
            frlfi_obs::count("trial.quarantined", 1);
            frlfi_obs::warn!("quarantining trial {flat} (cell {cell}, repeat {rep}): {e}");
            if let Err(qe) = quarantine::append(
                dir,
                &QuarantineRecord {
                    kind: QuarantineKind::Trial,
                    trial: flat,
                    cell,
                    repeat: rep,
                    worker: format!("x{}", std::process::id()),
                    error: e,
                    ts_ms: crate::coord::now_ms(),
                },
            ) {
                frlfi_obs::warn!(
                    "{qe} (quarantine record lost; the degraded exit still reports the trial)"
                );
            }
            lock_recover(&poisoned).insert(flat);
            // An erroring worker may be about to die: its buffered
            // events describe the failure and must reach disk now.
            frlfi_obs::flush();
        };

        if let Some((g, planes)) = &study {
            // Eval tasks load the frozen artifact planes instead of
            // retraining: one restored context per worker thread, all
            // built up front so a plane/shape mismatch degrades at the
            // task level rather than failing trial by trial.
            let mut ctxs = Vec::new();
            for _ in 0..threads.min(new_trials) {
                match g.context(planes) {
                    Ok(ctx) => ctxs.push(ctx),
                    Err(e) => {
                        let worker = format!("x{}", std::process::id());
                        quarantine_train_task(
                            dir,
                            g,
                            0,
                            &worker,
                            format!("restore eval context: {e}"),
                        );
                        let poisoned = undone_flats(&done, repeats);
                        return finalize(campaign, dir, cfg, &done, completed, 0, poisoned);
                    }
                }
            }
            std::thread::scope(|scope| {
                for mut ctx in ctxs {
                    let (cursor, pending) = (&cursor, &pending);
                    let (commit, quarantine_trial) = (&commit, &quarantine_trial);
                    scope.spawn(move || {
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            let Some(&(cell, rep)) = pending.get(i) else { break };
                            let flat = cell * repeats + rep;
                            let seed = campaign.trial_seed(flat);
                            // Per-observation vs --batched is a no-op
                            // here: a study eval is the same
                            // frozen-weight rollout either way.
                            // The trial span stays live across the
                            // commit so the io timer (and any child
                            // span) is parented to the trial.
                            let _trial = frlfi_obs::span_trial("trial", flat as u64);
                            let value = g.eval_cell(&mut ctx, cell, seed);
                            match value {
                                Ok(value) => {
                                    if let Err(e) = commit(cell, rep, seed, value) {
                                        quarantine_trial(cell, rep, e);
                                    }
                                }
                                Err(e) => {
                                    quarantine_trial(cell, rep, format!("trial failed: {e}"));
                                }
                            }
                            // Per-trial event flush once the span has
                            // closed: a killed worker's obs stream
                            // still covers every committed trial.
                            drop(_trial);
                            frlfi_obs::flush();
                        }
                    });
                }
            });
        } else if cfg.batched {
            // Batched mode: the work unit is one (cell, repeat) trial,
            // exactly as in per-observation mode — the batch axis
            // lives *inside* a trial (its evaluation episodes run in
            // lock-step through the per-worker BatchInferCtx arena),
            // so per-trial sharding costs no batching opportunity
            // while keeping per-trial durability: every finished trial
            // is persisted before the next one starts, and a kill
            // loses at most the trial in flight.
            std::thread::scope(|scope| {
                for _ in 0..threads.min(new_trials) {
                    scope.spawn(|| {
                        let mut ctx = frlfi::nn::BatchInferCtx::new();
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            let Some(&(cell, rep)) = pending.get(i) else { break };
                            let flat = cell * repeats + rep;
                            let seed = campaign.trial_seed(flat);
                            // Span covers the commit: io attributes
                            // to the trial in the causal tree.
                            let _trial = frlfi_obs::span_trial("trial", flat as u64);
                            let values = campaign.run_trials_batched(cell, &[seed], &mut ctx);
                            // A failed trial (e.g. a mis-shaped
                            // observation reaching the policy network)
                            // is quarantined like an I/O-poisoned one:
                            // durably recorded, excluded from this
                            // run's progress, queue keeps draining.
                            match values {
                                Ok(values) => {
                                    if let Err(e) = commit(cell, rep, seed, values[0]) {
                                        quarantine_trial(cell, rep, e);
                                    }
                                }
                                Err(e) => quarantine_trial(cell, rep, format!("trial failed: {e}")),
                            }
                            // Per-trial event flush once the span has
                            // closed: a killed worker's obs stream
                            // still covers every committed trial.
                            drop(_trial);
                            frlfi_obs::flush();
                        }
                    });
                }
            });
        } else {
            std::thread::scope(|scope| {
                for _ in 0..threads.min(new_trials) {
                    scope.spawn(|| {
                        // One inference scratch arena per worker, reused
                        // across every trial this worker evaluates.
                        let mut ctx = frlfi::nn::InferCtx::new();
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            let Some(&(cell, rep)) = pending.get(i) else { break };
                            let flat = cell * repeats + rep;
                            let seed = campaign.trial_seed(flat);
                            // Span covers the commit: io attributes
                            // to the trial in the causal tree.
                            let _trial = frlfi_obs::span_trial("trial", flat as u64);
                            let value = campaign.run_trial_ctx(cell, seed, &mut ctx);
                            match value {
                                Ok(value) => {
                                    if let Err(e) = commit(cell, rep, seed, value) {
                                        quarantine_trial(cell, rep, e);
                                    }
                                }
                                Err(e) => quarantine_trial(cell, rep, format!("trial failed: {e}")),
                            }
                            // Per-trial event flush once the span has
                            // closed: a killed worker's obs stream
                            // still covers every committed trial.
                            drop(_trial);
                            frlfi_obs::flush();
                        }
                    });
                }
            });
        }

        for (cell, rep, value) in
            fresh.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner)
        {
            if done[cell][rep].is_none() {
                completed += 1;
            }
            done[cell][rep] = Some(value);
        }
        quarantined = poisoned
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .into_iter()
            .collect();
    }

    finalize(campaign, dir, cfg, &done, completed, new_trials, quarantined)
}

/// Folds the completion map into the outcome; when every trial is
/// persisted, renders and publishes `summary.txt` — per-cell stats in
/// repeat order, exactly as the in-process sweep engine folds them.
///
/// When the queue drained but some trials were **quarantined**
/// (their I/O retries exhausted), publishes an explicitly marked
/// degraded summary instead and errors unless
/// [`RunnerConfig::allow_partial`] — graceful degradation, not
/// silence: the exit code says partial, the summary says partial,
/// and a later healthy `resume`/`worker` run reclaims the missing
/// trials (bitwise-identically) and replaces the summary with the
/// real one.
fn finalize(
    campaign: &Campaign,
    dir: &Path,
    cfg: &RunnerConfig,
    done: &[Vec<Option<f64>>],
    completed: usize,
    new_trials: usize,
    quarantined: Vec<usize>,
) -> Result<CampaignOutcome, String> {
    let total = campaign.total_trials();
    let (stats, table, wide_table) = if completed == total {
        let stats: Vec<CellStats> = done
            .iter()
            .map(|cell| {
                let values: Vec<f64> = cell.iter().map(|v| v.expect("campaign complete")).collect();
                aggregate_in_order(&values)
            })
            .collect();
        // Study campaigns render through the geometry's own figure
        // renderer on plain in-order means — the exact fold the
        // sequential drivers use — so summary.txt is byte-identical
        // to `experiments::fig4::run` etc. (The chunked-Welford
        // `CellStats` mean is not bit-identical to a plain mean, so
        // it stays informational in `outcome.stats`.)
        let table = match campaign.study() {
            Some(g) => {
                let means: Vec<f64> = done
                    .iter()
                    .map(|cell| {
                        let mut sum = 0.0;
                        for v in cell {
                            sum += v.expect("campaign complete");
                        }
                        sum / campaign.repeats as f64
                    })
                    .collect();
                g.render(&means)
            }
            None => render_table(campaign, &stats),
        };
        let wide_table = cfg.wide_summary.then(|| render_wide_table(campaign, &stats));
        let mut text = table.render();
        if let Some(wide) = &wide_table {
            text.push('\n');
            text.push_str(&wide.render());
        }
        write_atomic(dir, "summary.txt", &text)?;
        (Some(stats), Some(table), wide_table)
    } else if !quarantined.is_empty() {
        let text = render_degraded_summary(campaign, done, completed);
        write_atomic(dir, "summary.txt", &text)?;
        if !cfg.allow_partial {
            return Err(format!(
                "campaign degraded: {} of {total} trials missing after {} were quarantined \
                 (I/O retries exhausted — see quarantine.jsonl); summary.txt is marked \
                 DEGRADED. Re-run `campaign resume`/`campaign worker` on healthy I/O to \
                 reclaim them, or pass --allow-partial to accept partial results",
                total - completed,
                quarantined.len(),
            ));
        }
        (None, None, None)
    } else {
        (None, None, None)
    };

    Ok(CampaignOutcome {
        completed_trials: completed,
        total_trials: total,
        new_trials,
        stats,
        table,
        wide_table,
        quarantined,
    })
}

/// Renders the explicitly marked partial summary a degraded campaign
/// publishes. Deliberately a pure function of the scenario identity
/// and the completion map — no paths, timestamps, error strings or
/// worker ids — so a deterministic fault produces a byte-identical
/// degraded summary on every run (the bar the chaos torture harness
/// holds it to). The errors themselves live in `quarantine.jsonl`
/// and the warning log.
fn render_degraded_summary(
    campaign: &Campaign,
    done: &[Vec<Option<f64>>],
    completed: usize,
) -> String {
    let mut text = String::new();
    text.push_str("!! DEGRADED CAMPAIGN SUMMARY — PARTIAL RESULTS !!\n");
    text.push_str(&format!(
        "Campaign {} ({:?} scale): {completed}/{} trials completed.\n",
        campaign.scenario.name,
        campaign.scenario.scale,
        campaign.total_trials(),
    ));
    text.push_str(
        "Missing trials were quarantined after exhausting I/O retries\n\
         (quarantine.jsonl has details). They remain reclaimable: re-run\n\
         `campaign resume` or `campaign worker` on healthy I/O to complete\n\
         the campaign and replace this summary with the real one.\n\n\
         missing (cell, repeat):\n",
    );
    for (cell, cell_done) in done.iter().enumerate() {
        for (rep, slot) in cell_done.iter().enumerate() {
            if slot.is_none() {
                text.push_str(&format!("  ({cell}, {rep})\n"));
            }
        }
    }
    text
}

/// Flat indices of every not-yet-persisted trial — the dependents a
/// failed train task poisons.
fn undone_flats(done: &[Vec<Option<f64>>], repeats: usize) -> Vec<usize> {
    let mut flats = Vec::new();
    for (cell, cell_done) in done.iter().enumerate() {
        for (rep, slot) in cell_done.iter().enumerate() {
            if slot.is_none() {
                flats.push(cell * repeats + rep);
            }
        }
    }
    flats
}

/// Records a failed train task durably (kind = `train`) and warns.
/// The task's dependent evals are poisoned by the caller — the same
/// graceful-degradation policy as trial quarantine: the degraded
/// summary and exit code report the damage, and a later healthy run
/// retrains bitwise-identically and completes the campaign.
fn quarantine_train_task(
    dir: &Path,
    g: &frlfi::experiments::study::StudyGeometry,
    model: usize,
    worker: &str,
    error: String,
) {
    frlfi_obs::count("train.quarantined", 1);
    let label = g.models().get(model).map_or_else(|| "?".into(), |m| m.label());
    frlfi_obs::warn!("quarantining train task {model} ({label}): {error}");
    if let Err(qe) = quarantine::append(
        dir,
        &QuarantineRecord {
            kind: QuarantineKind::Train,
            trial: model,
            cell: model,
            repeat: 0,
            worker: worker.into(),
            error,
            ts_ms: crate::coord::now_ms(),
        },
    ) {
        frlfi_obs::warn!("{qe} (quarantine record lost; the degraded exit still reports the task)");
    }
    // An erroring worker may be about to die: its buffered events
    // describe the failure and must reach disk now.
    frlfi_obs::flush();
}

/// Every study model's decoded weight planes, in model order (outer:
/// model, inner: the model's per-agent planes).
type ModelPlanes = Vec<Vec<Vec<f32>>>;

/// Once-per-process cache of the decoded artifact planes, shared by
/// every shared-mode eval thread.
type PlanesCache = Mutex<Option<std::sync::Arc<ModelPlanes>>>;

/// The exclusive-mode train phase: ensures every model artifact of a
/// study campaign is published and decodable, training whatever is
/// missing. Returns the decoded weight planes in model order.
///
/// Reuse is digest-verified: a recorded artifact whose file fails
/// verification (torn by a kill, deleted, corrupted) is retrained —
/// bitwise-identically, training is a pure function of the geometry —
/// and republished. Errors carry the model index whose train task
/// failed, so the caller can quarantine it and poison its dependents.
fn ensure_artifacts(
    g: &frlfi::experiments::study::StudyGeometry,
    dir: &Path,
    worker: &str,
) -> Result<ModelPlanes, (usize, String)> {
    let mut tracker = crate::artifacts::ArtifactTracker::new(dir, g.models().len());
    tracker.refresh().map_err(|e| (0, e))?;
    let mut all = Vec::with_capacity(g.models().len());
    for (model, spec) in g.models().iter().enumerate() {
        if let Some(digest) = tracker.digest(model) {
            match crate::artifacts::load_planes(dir, model, digest) {
                Ok(planes) => {
                    frlfi_obs::count("artifact.reused", 1);
                    all.push(planes);
                    continue;
                }
                Err(e) => frlfi_obs::warn!(
                    "model {model} ({}): {e}; retraining (bitwise-identical — training is pure)",
                    spec.label()
                ),
            }
        }
        let planes = {
            let _train = frlfi_obs::span_trial("train_task", model as u64);
            spec.train().map_err(|e| (model, format!("train failed: {e}")))?
        };
        crate::artifacts::publish(dir, model, &planes, worker).map_err(|e| (model, e))?;
        frlfi_obs::count("artifact.published", 1);
        all.push(planes);
    }
    Ok(all)
}

/// The decoded artifact planes for shared-mode eval tasks, loaded
/// once per process and shared across its worker threads.
///
/// Every plane set is digest-verified against its publication record;
/// a torn artifact file falls back to in-process retraining (again
/// bitwise-identical) with a best-effort republish to heal the file
/// for other workers.
fn eval_planes(
    g: &frlfi::experiments::study::StudyGeometry,
    dir: &Path,
    cache: &PlanesCache,
    worker: &str,
) -> Result<std::sync::Arc<ModelPlanes>, String> {
    let mut guard = lock_recover(cache);
    if let Some(planes) = guard.as_ref() {
        return Ok(std::sync::Arc::clone(planes));
    }
    let mut tracker = crate::artifacts::ArtifactTracker::new(dir, g.models().len());
    tracker.refresh()?;
    let mut all = Vec::with_capacity(g.models().len());
    for (model, spec) in g.models().iter().enumerate() {
        let Some(digest) = tracker.digest(model) else {
            return Err(format!(
                "model {model} ({}) has no publication record — eval tasks gate on artifacts",
                spec.label()
            ));
        };
        match crate::artifacts::load_planes(dir, model, digest) {
            Ok(planes) => {
                frlfi_obs::count("artifact.reused", 1);
                all.push(planes);
            }
            Err(e) => {
                frlfi_obs::warn!(
                    "model {model} ({}): {e}; retraining in-process (bitwise-identical — \
                     training is pure)",
                    spec.label()
                );
                let planes = spec.train().map_err(|te| format!("retrain model {model}: {te}"))?;
                if let Err(pe) = crate::artifacts::publish(dir, model, &planes, worker) {
                    frlfi_obs::warn!(
                        "republish model {model}: {pe} (continuing with in-memory weights)"
                    );
                }
                all.push(planes);
            }
        }
    }
    let planes = std::sync::Arc::new(all);
    *guard = Some(std::sync::Arc::clone(&planes));
    Ok(planes)
}

/// The shared-queue run loop: worker threads acquire `(cell, repeat)`
/// trials through the [`crate::coord`] lease protocol instead of an
/// in-memory cursor, so any number of processes sharing the campaign
/// directory cooperate on one campaign. With no interrupt budget the
/// call blocks until the whole campaign completes — trials claimed by
/// other live workers are waited out (and reaped if their worker
/// dies), then whoever observes completion publishes `summary.txt`.
fn run_shared(
    campaign: &Campaign,
    dir: &Path,
    cfg: &RunnerConfig,
    coord_cfg: &CoordConfig,
) -> Result<CampaignOutcome, String> {
    if cfg.wide_summary {
        // The published summary must be a pure function of the trial
        // log — with several finalizer processes carrying different
        // flags, a per-call rendering option would make summary.txt
        // depend on which process renames last.
        return Err("--wide is an exclusive-mode rendering option; render the spread table \
                    after completion with `campaign resume <dir> --wide`"
            .into());
    }
    let repeats = campaign.repeats;
    let total = campaign.total_trials();
    let coordinator = Coordinator::new(dir, coord_cfg.clone());

    // One shared append handle; every record goes through the
    // [`crate::coord::append_jsonl_line`] durability protocol (heal a
    // dead writer's torn tail into its own line, single `O_APPEND`
    // write so concurrent processes interleave line-atomically,
    // fsync) under the retry policy. A retried short write leaves a
    // healed garbage interior line behind — skippable by every
    // shared-log reader, invisible in the statistics.
    let file = io::with_retry("trials.open", || io::open_append("trials.open", &trials_path(dir)))
        .map_err(|e| format!("open {}: {e}", trials_path(dir).display()))?;
    let sink = Mutex::new(file);
    let commit = |record: &TrialRecord| -> Result<(), String> {
        let _io = frlfi_obs::timed("io");
        let line = json::render(&record.to_value());
        let mut f = lock_recover(&sink);
        io::with_retry("trials.append", || {
            crate::coord::append_jsonl_line("trials.append", &mut f, &line)
        })
        .map_err(|e| format!("append trial record: {e}"))
    };

    let threads = resolve_threads(cfg.threads);
    let tracker = Mutex::new(TrialTracker::new(dir, total));
    let budget = AtomicUsize::new(cfg.max_new_trials.unwrap_or(usize::MAX));
    let new_trials = AtomicUsize::new(0);
    let failed = AtomicBool::new(false);
    let errors: Mutex<Vec<String>> = Mutex::new(Vec::new());
    let fail = |e: String| {
        failed.store(true, Ordering::Relaxed);
        lock_recover(&errors).push(e);
    };
    // Trials this process gave up on: quarantined after their retry
    // budget exhausted. Excluded from this process's pending view
    // (other, healthier workers may still reclaim them).
    let poisoned: Mutex<BTreeSet<usize>> = Mutex::new(BTreeSet::new());
    // Study (task-DAG) state. Claim ids are tasks, not trials: ids
    // `0..n_models` are train tasks, `n_models + flat` are eval
    // trials (`n_models` is 0 for classic campaigns, so classic claim
    // logs are untouched). Eval tasks only become claimable once
    // every model's artifact record has landed.
    let n_models = campaign.n_models();
    let artifact_tracker = Mutex::new(crate::artifacts::ArtifactTracker::new(dir, n_models));
    // Train tasks this process gave up on (train or publish failed).
    let train_poisoned: Mutex<BTreeSet<usize>> = Mutex::new(BTreeSet::new());
    // Decoded artifact planes, loaded once per process and shared by
    // every eval thread.
    let planes_cache: PlanesCache = Mutex::new(None);
    let quarantine_trial = |trial: usize, e: String| {
        let (cell, rep) = (trial / repeats, trial % repeats);
        frlfi_obs::count("trial.quarantined", 1);
        frlfi_obs::warn!("quarantining trial {trial} (cell {cell}, repeat {rep}): {e}");
        if let Err(qe) = quarantine::append(
            dir,
            &QuarantineRecord {
                kind: QuarantineKind::Trial,
                trial,
                cell,
                repeat: rep,
                worker: coord_cfg.worker_id.clone(),
                error: e,
                ts_ms: crate::coord::now_ms(),
            },
        ) {
            frlfi_obs::warn!(
                "{qe} (quarantine record lost; the degraded exit still reports the trial)"
            );
        }
        lock_recover(&poisoned).insert(trial);
        // An erroring worker may be about to die: its buffered events
        // describe the failure and must reach disk now.
        frlfi_obs::flush();
    };

    std::thread::scope(|scope| {
        for thread_idx in 0..threads.min(total.max(1)) {
            let coordinator = &coordinator;
            let tracker = &tracker;
            let budget = &budget;
            let new_trials = &new_trials;
            let failed = &failed;
            let fail = &fail;
            let commit = &commit;
            let poisoned = &poisoned;
            let quarantine_trial = &quarantine_trial;
            let artifact_tracker = &artifact_tracker;
            let train_poisoned = &train_poisoned;
            let planes_cache = &planes_cache;
            scope.spawn(move || {
                let study = campaign.study();
                let mut study_ctx: Option<frlfi::experiments::study::StudyCtx> = None;
                let mut obs_ctx = frlfi::nn::InferCtx::new();
                let mut batch_ctx = frlfi::nn::BatchInferCtx::new();
                // Stagger each claimer's scan start so workers spread
                // over the queue instead of racing for trial 0 (any
                // claim order is correct; this only reduces contention).
                let offset = fxhash(coord_cfg.worker_id.as_bytes()) as usize + thread_idx * 7919;
                loop {
                    if failed.load(Ordering::Relaxed) {
                        break;
                    }
                    // Incremental completion view: each poll folds only
                    // the trial-log tail appended since the last one.
                    let pending: Vec<usize> = {
                        let mut t = lock_recover(tracker);
                        if let Err(e) = t.refresh(campaign) {
                            fail(e);
                            break;
                        }
                        if t.completed == total {
                            break; // campaign complete
                        }
                        let poisoned = lock_recover(poisoned);
                        (0..total)
                            .filter(|&i| !t.done[i] && !poisoned.contains(&i))
                            .map(|i| i + n_models)
                            .collect()
                    };
                    // Study train phase: until every artifact record
                    // has landed, the only claimable tasks are the
                    // missing models' train tasks — the artifact gate
                    // that keeps eval tasks unclaimable.
                    if let Some(g) = study {
                        let missing: Vec<usize> = {
                            let mut a = lock_recover(artifact_tracker);
                            if let Err(e) = a.refresh() {
                                fail(e);
                                break;
                            }
                            a.missing()
                        };
                        if !missing.is_empty() {
                            let claimable: Vec<usize> = {
                                let tp = lock_recover(train_poisoned);
                                missing.iter().copied().filter(|m| !tp.contains(m)).collect()
                            };
                            if claimable.is_empty() {
                                // Every missing artifact's train task is
                                // poisoned here: its dependent evals can
                                // never unblock in this process. Degrade
                                // deterministically; a healthier worker
                                // may still publish the artifacts.
                                break;
                            }
                            match coordinator.claim_next(&claimable, offset) {
                                Err(e) => {
                                    fail(e);
                                    return;
                                }
                                Ok(Some(model)) => {
                                    // Train tasks never consume the
                                    // interrupt budget: `max_new_trials`
                                    // counts eval trials only.
                                    let outcome = g.models()[model]
                                        .train()
                                        .map_err(|e| format!("train failed: {e}"))
                                        .and_then(|planes| {
                                            crate::artifacts::publish(
                                                dir,
                                                model,
                                                &planes,
                                                &coord_cfg.worker_id,
                                            )
                                            .map(|_| ())
                                        });
                                    match outcome {
                                        Ok(()) => frlfi_obs::count("artifact.published", 1),
                                        Err(e) => {
                                            quarantine_train_task(
                                                dir,
                                                g,
                                                model,
                                                &coord_cfg.worker_id,
                                                e,
                                            );
                                            lock_recover(train_poisoned).insert(model);
                                        }
                                    }
                                    coordinator.complete(model);
                                    frlfi_obs::flush();
                                }
                                Ok(None) => {
                                    if cfg.max_new_trials.is_some() {
                                        // Budgeted calls never wait on
                                        // other workers' train leases.
                                        break;
                                    }
                                    std::thread::sleep(std::time::Duration::from_millis(
                                        coord_cfg.poll_ms,
                                    ));
                                }
                            }
                            continue;
                        }
                    }
                    if pending.is_empty() {
                        // Every remaining trial is quarantined by this
                        // process: no further progress is possible
                        // here. Finalize reports the degraded outcome;
                        // a healthier worker can still reclaim them.
                        break;
                    }
                    // Reserve one unit of the interrupt budget before
                    // claiming (returned if no claim lands), so a
                    // budgeted call executes exactly `max_new_trials`
                    // new trials however many threads race here.
                    if !reserve(budget) {
                        break;
                    }
                    let claimed = match coordinator.claim_next(&pending, offset) {
                        Ok(c) => c,
                        Err(e) => {
                            fail(e);
                            return;
                        }
                    };
                    let Some(task) = claimed else {
                        budget.fetch_add(1, Ordering::Relaxed);
                        if cfg.max_new_trials.is_some() {
                            // Budgeted calls never wait on other
                            // workers' leases.
                            break;
                        }
                        // Everything is claimed by live workers: wait
                        // for completions or lease expiries.
                        std::thread::sleep(std::time::Duration::from_millis(coord_cfg.poll_ms));
                        continue;
                    };
                    let trial = task - n_models;
                    let (cell, rep) = (trial / repeats, trial % repeats);
                    // Study eval tasks run against a per-thread context
                    // restored from the published artifacts, built on
                    // this thread's first eval (the gate above already
                    // opened, so every record is in place).
                    if let Some(g) = study {
                        if study_ctx.is_none() {
                            let built = eval_planes(g, dir, planes_cache, &coord_cfg.worker_id)
                                .and_then(|planes| {
                                    g.context(&planes)
                                        .map_err(|e| format!("restore eval context: {e}"))
                                });
                            match built {
                                Ok(ctx) => study_ctx = Some(ctx),
                                Err(e) => {
                                    fail(e);
                                    coordinator.complete(task);
                                    return;
                                }
                            }
                        }
                    }
                    let seed = campaign.trial_seed(trial);
                    // The trial span stays live across the commit so
                    // the io timer and any retry/quarantine events
                    // are parented to the trial in the causal tree.
                    let _trial = frlfi_obs::span_trial("trial", trial as u64);
                    let value = match (study, study_ctx.as_mut()) {
                        (Some(g), Some(ctx)) => g.eval_cell(ctx, cell, seed),
                        _ if cfg.batched => {
                            campaign.run_trials_batched(cell, &[seed], &mut batch_ctx).map(|v| v[0])
                        }
                        _ => campaign.run_trial_ctx(cell, seed, &mut obs_ctx),
                    };
                    let value = match value {
                        Ok(v) => v,
                        Err(e) => {
                            // Deterministic trial failure: quarantine
                            // and release the lease. This process skips
                            // the trial from now on; a worker running a
                            // fixed build may still reclaim it.
                            quarantine_trial(trial, format!("trial failed: {e}"));
                            coordinator.complete(task);
                            continue;
                        }
                    };
                    let record = TrialRecord { cell, repeat: rep, seed, value };
                    if let Err(e) = commit(&record) {
                        // Retry budget spent: quarantine the trial and
                        // keep draining the queue instead of dying —
                        // the lease is released (its record is what
                        // the trial log is missing, so another worker
                        // reclaiming it is exactly what we want).
                        quarantine_trial(trial, e);
                        coordinator.complete(task);
                        continue;
                    }
                    coordinator.complete(task);
                    new_trials.fetch_add(1, Ordering::Relaxed);
                    // Per-trial event flush once the span has closed: a
                    // SIGKILLed worker's obs stream still covers its
                    // durably committed trials.
                    drop(_trial);
                    frlfi_obs::flush();
                }
            });
        }
    });
    drop(coordinator); // stop the heartbeat before reporting

    if failed.load(Ordering::Relaxed) {
        return Err(lock_recover(&errors).join("; "));
    }

    // Re-read the log for the cross-process view: trials other workers
    // committed count toward completion (and toward publishing the
    // summary) even though this process never ran them.
    let (records, _) = load_records(dir, LoadPolicy::Lenient)?;
    let done = fold_records(campaign, records)?;
    let completed = done.iter().flatten().filter(|v| v.is_some()).count();
    let mut quarantined: Vec<usize> = poisoned
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .into_iter()
        // Another worker may have committed a trial we quarantined;
        // the completed record overrides the advisory quarantine.
        .filter(|&t| done[t / repeats][t % repeats].is_none())
        .collect();
    let train_poisoned =
        train_poisoned.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner);
    if !train_poisoned.is_empty() && completed < total {
        // A quarantined train task deterministically poisons every
        // dependent eval trial that never got its record — they all
        // gate on the artifact that failed to land.
        quarantined = undone_flats(&done, repeats);
    }
    finalize(campaign, dir, cfg, &done, completed, new_trials.load(Ordering::Relaxed), quarantined)
}

/// Atomically takes one unit of the interrupt budget; `false` means
/// the budget is exhausted.
fn reserve(budget: &AtomicUsize) -> bool {
    budget.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |b| b.checked_sub(1)).is_ok()
}

/// A tiny FNV-1a over bytes — worker-id scan staggering only (no
/// correctness weight whatsoever).
fn fxhash(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Renders the wide per-cell spread table: one row per campaign cell
/// (row-major in the scenario's grid), with the PR 2 `CellStats`
/// spread columns — mean, min, max and the 95% confidence-interval
/// half-width of the mean — that the standard means grid omits.
pub fn render_wide_table(campaign: &Campaign, stats: &[CellStats]) -> Table {
    let title = format!(
        "Campaign {} ({:?} scale): per-cell spread over {} repeats",
        campaign.scenario.name, campaign.scenario.scale, campaign.repeats,
    );
    let mut table =
        Table::new(title, "cell", vec!["mean".into(), "min".into(), "max".into(), "ci95".into()])
            .with_precision(2);
    let labels: Vec<String> = match &campaign.grid {
        CellGrid::BerByEpisode { bers, episodes } => bers
            .iter()
            .flat_map(|&b| {
                episodes
                    .iter()
                    .map(move |&e| format!("ber {} @ ep{e}", frlfi::experiments::ber_label(b)))
            })
            .collect(),
        CellGrid::FleetByBer { sizes, bers } => sizes
            .iter()
            .flat_map(|&n| bers.iter().map(move |&b| format!("n={n} @ ber {b}")))
            .collect(),
        CellGrid::Study { rows, cols } => {
            rows.iter().flat_map(|r| cols.iter().map(move |c| format!("{r} @ {c}"))).collect()
        }
    };
    for (label, s) in labels.into_iter().zip(stats.iter()) {
        table.push_row(label, vec![s.mean, s.min, s.max, s.ci95_half_width()]);
    }
    table
}

/// Renders campaign statistics in the scenario's grid layout.
pub fn render_table(campaign: &Campaign, stats: &[CellStats]) -> Table {
    let title = format!(
        "Campaign {} ({:?} scale): {}",
        campaign.scenario.name,
        campaign.scenario.scale,
        match campaign.trials {
            crate::spec::Trials::Grid(_) => "success rate (%)",
            crate::spec::Trials::Drone(_) => "flight distance (m)",
            crate::spec::Trials::Study(_) => "study metric",
        }
    );
    match &campaign.grid {
        CellGrid::BerByEpisode { bers, episodes } => {
            frlfi::experiments::harness::heatmap_table(&title, bers, episodes, stats, 1)
        }
        CellGrid::FleetByBer { sizes, bers } => {
            let mut table =
                Table::new(title, "fleet", bers.iter().map(|b| format!("ber {b}")).collect());
            for (si, &n) in sizes.iter().enumerate() {
                let row: Vec<f64> =
                    (0..bers.len()).map(|bi| stats[si * bers.len() + bi].mean).collect();
                table.push_row(format!("n={n}"), row);
            }
            table
        }
        // The byte-exact figure path for studies is `finalize`'s
        // `StudyGeometry::render` over plain in-order means; from bare
        // stats the same layout renders over the stats means.
        CellGrid::Study { rows, cols } => match campaign.study() {
            Some(g) => g.render(&stats.iter().map(|s| s.mean).collect::<Vec<f64>>()),
            None => {
                let mut table = Table::new(title, "row", cols.clone());
                for (ri, key) in rows.iter().enumerate() {
                    let row: Vec<f64> =
                        (0..cols.len()).map(|ci| stats[ri * cols.len() + ci].mean).collect();
                    table.push_row(key.clone(), row);
                }
                table
            }
        },
    }
}
