//! The sharded, resumable campaign runner.
//!
//! A campaign directory is the unit of persistence:
//!
//! ```text
//! <dir>/campaign.toml   — scenario snapshot (written once, verified on resume)
//! <dir>/trials.jsonl    — one JSON record per completed (cell, repeat) trial
//! <dir>/summary.txt     — rendered result table (written when complete)
//! ```
//!
//! Work is sharded `(cell × repeat)` across worker threads through an
//! atomic cursor; every trial's seed derives from the campaign master
//! seed exactly as in [`frlfi_fault::sweep`] (`derive_seed(master,
//! cell * repeats + repeat)`), so a campaign interrupted at any point
//! and resumed — with any thread count — replays the missing trials
//! with identical seeds. Final per-cell statistics fold the persisted
//! values in repeat order through [`frlfi_fault::aggregate_in_order`],
//! which is bit-identical to what the in-process `sweep` engine
//! produces for the same trials.

use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use frlfi::report::Table;
use frlfi::tensor::derive_seed;
use frlfi_fault::{aggregate_in_order, CellStats};
use serde::{Map, Value};

use crate::fmt::json;
use crate::spec::{Campaign, CellGrid, Scenario};

/// Runner options.
#[derive(Debug, Clone, Default)]
pub struct RunnerConfig {
    /// Worker threads (0 = available parallelism).
    pub threads: usize,
    /// Stop after this many *new* trials (used to exercise the
    /// interrupt/resume path; `None` = run to completion).
    pub max_new_trials: Option<usize>,
    /// Batched evaluation mode: workers claim `(cell, repeat)` trials
    /// exactly as in per-observation mode, but each trial runs through
    /// [`crate::Campaign::run_trials_batched`], where its post-training
    /// evaluation executes its episodes in lock-step on the
    /// [`frlfi::nn::BatchInferCtx`] fast path (the batch axis is a
    /// trial's concurrent eval episodes — training remains sequential
    /// per repeat). Trial values, the persisted log and the final
    /// statistics are bit-identical to the per-observation mode — only
    /// throughput changes, so the two modes mix freely across resume
    /// sessions.
    pub batched: bool,
    /// Append the wide per-cell statistics table (mean / min / max /
    /// 95% CI half-width over repeats) to `summary.txt` after the
    /// standard means grid.
    pub wide_summary: bool,
}

/// One persisted trial result.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialRecord {
    /// Cell index (row-major in the campaign's grid).
    pub cell: usize,
    /// Repeat index within the cell.
    pub repeat: usize,
    /// The derived seed the trial ran with.
    pub seed: u64,
    /// The trial's metric value.
    pub value: f64,
}

impl TrialRecord {
    fn to_value(&self) -> Value {
        let mut m = Map::new();
        m.insert("cell".into(), Value::Int(self.cell as i64));
        m.insert("repeat".into(), Value::Int(self.repeat as i64));
        m.insert("seed".into(), Value::Int(self.seed as i64));
        m.insert("value".into(), Value::Float(self.value));
        Value::Table(m)
    }

    fn from_value(v: &Value) -> Result<Self, String> {
        let get_int = |k: &str| {
            v.get(k)
                .and_then(Value::as_int)
                .ok_or_else(|| format!("trial record missing integer `{k}`"))
        };
        let value = match v.get("value") {
            Some(Value::Float(f)) => *f,
            Some(Value::Int(i)) => *i as f64,
            _ => return Err("trial record missing number `value`".into()),
        };
        Ok(TrialRecord {
            cell: get_int("cell")? as usize,
            repeat: get_int("repeat")? as usize,
            seed: get_int("seed")? as u64,
            value,
        })
    }
}

/// The outcome of a run/resume call.
#[derive(Debug, Clone)]
pub struct CampaignOutcome {
    /// Trials completed across all sessions (persisted).
    pub completed_trials: usize,
    /// Trials the whole campaign needs.
    pub total_trials: usize,
    /// Trials this call executed.
    pub new_trials: usize,
    /// Per-cell statistics — present only when the campaign completed.
    pub stats: Option<Vec<CellStats>>,
    /// Rendered result table — present only when the campaign completed.
    pub table: Option<Table>,
    /// Wide per-cell spread table — present only when the campaign
    /// completed *and* [`RunnerConfig::wide_summary`] was set.
    pub wide_table: Option<Table>,
}

impl CampaignOutcome {
    /// Whether every (cell × repeat) trial is persisted.
    pub fn complete(&self) -> bool {
        self.completed_trials == self.total_trials
    }
}

/// Runs a scenario in `dir`, resuming any persisted progress.
///
/// First call writes `campaign.toml`; later calls verify the stored
/// scenario matches and skip completed `(cell, repeat)` trials.
///
/// # Errors
///
/// Returns a message on I/O failures, scenario mismatches, or corrupt
/// trial logs.
pub fn run(scenario: &Scenario, dir: &Path, cfg: &RunnerConfig) -> Result<CampaignOutcome, String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
    let manifest = dir.join("campaign.toml");
    if manifest.exists() {
        let stored = load_scenario(&manifest)?;
        if &stored != scenario {
            return Err(format!(
                "{} holds a different campaign ({} @ {:?}); refusing to mix trial logs",
                dir.display(),
                stored.name,
                stored.scale,
            ));
        }
    } else {
        std::fs::write(&manifest, scenario.to_toml())
            .map_err(|e| format!("write {}: {e}", manifest.display()))?;
    }

    let campaign = scenario.expand().map_err(|e| e.to_string())?;
    run_expanded(&campaign, dir, cfg)
}

/// Resumes the campaign persisted in `dir`.
///
/// # Errors
///
/// As for [`run`]; additionally errors if `dir` has no manifest.
pub fn resume(dir: &Path, cfg: &RunnerConfig) -> Result<CampaignOutcome, String> {
    let scenario = load_scenario(&dir.join("campaign.toml"))?;
    run(&scenario, dir, cfg)
}

/// Loads the scenario manifest of a campaign directory.
///
/// # Errors
///
/// Returns a message if the manifest is missing or malformed.
pub fn load_scenario(manifest: &Path) -> Result<Scenario, String> {
    let text = std::fs::read_to_string(manifest)
        .map_err(|e| format!("read {}: {e}", manifest.display()))?;
    Scenario::from_toml(&text).map_err(|e| format!("{}: {e}", manifest.display()))
}

fn trials_path(dir: &Path) -> PathBuf {
    dir.join("trials.jsonl")
}

/// Reads the persisted trial log, tolerating a torn trailing line (the
/// crash-interrupted write case). Returns the records plus the byte
/// length of the valid prefix — the caller truncates any torn tail off
/// before appending, so the fragment can never end up as an interior
/// (hard-error) line of a later log.
fn load_records(dir: &Path) -> Result<(Vec<TrialRecord>, u64), String> {
    let path = trials_path(dir);
    let mut text = String::new();
    match File::open(&path) {
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok((Vec::new(), 0)),
        Err(e) => return Err(format!("open {}: {e}", path.display())),
        Ok(mut f) => {
            f.read_to_string(&mut text).map_err(|e| format!("read {}: {e}", path.display()))?;
        }
    }
    let mut records = Vec::new();
    let mut valid_len = 0u64;
    let pieces: Vec<&str> = text.split_inclusive('\n').collect();
    for (i, piece) in pieces.iter().enumerate() {
        let line = piece.trim();
        if line.is_empty() {
            valid_len += piece.len() as u64;
            continue;
        }
        match json::parse(line).map_err(|e| e.to_string()).and_then(|v| TrialRecord::from_value(&v))
        {
            Ok(r) => {
                records.push(r);
                valid_len += piece.len() as u64;
            }
            Err(e) if i + 1 == pieces.len() => {
                // Torn tail from an interrupted write: drop it (the
                // caller truncates); the trial will re-run.
                let _ = e;
            }
            Err(e) => return Err(format!("{} line {}: {e}", path.display(), i + 1)),
        }
    }
    Ok((records, valid_len))
}

fn run_expanded(
    campaign: &Campaign,
    dir: &Path,
    cfg: &RunnerConfig,
) -> Result<CampaignOutcome, String> {
    let n_cells = campaign.trials.len();
    let repeats = campaign.repeats;
    let total = campaign.total_trials();

    // Completed-trial map from the persisted log, with integrity checks.
    let mut done: Vec<Vec<Option<f64>>> = vec![vec![None; repeats]; n_cells];
    let mut completed = 0usize;
    let (records, valid_len) = load_records(dir)?;
    for r in records {
        if r.cell >= n_cells || r.repeat >= repeats {
            return Err(format!(
                "trial log refers to (cell {}, repeat {}) outside the {}×{} campaign — \
                 wrong directory?",
                r.cell, r.repeat, n_cells, repeats
            ));
        }
        let expect_seed = derive_seed(campaign.master_seed, (r.cell * repeats + r.repeat) as u64);
        if r.seed != expect_seed {
            return Err(format!(
                "trial log seed {:#x} for (cell {}, repeat {}) does not match the campaign \
                 master seed scheme (expected {:#x})",
                r.seed, r.cell, r.repeat, expect_seed
            ));
        }
        if done[r.cell][r.repeat].is_none() {
            completed += 1;
        }
        done[r.cell][r.repeat] = Some(r.value);
    }

    // Pending work, bounded by any interrupt budget.
    let mut pending: Vec<(usize, usize)> = Vec::with_capacity(total - completed);
    for (cell, cell_done) in done.iter().enumerate() {
        for (rep, slot) in cell_done.iter().enumerate() {
            if slot.is_none() {
                pending.push((cell, rep));
            }
        }
    }
    if let Some(cap) = cfg.max_new_trials {
        pending.truncate(cap);
    }

    let new_trials = pending.len();
    if new_trials > 0 {
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(trials_path(dir))
            .map_err(|e| format!("open {}: {e}", trials_path(dir).display()))?;
        // Chop any torn tail off before appending, so the fragment
        // cannot merge with the next record into one corrupt line.
        if file.metadata().map_err(|e| format!("stat trial log: {e}"))?.len() > valid_len {
            file.set_len(valid_len).map_err(|e| format!("truncate torn trial log: {e}"))?;
        }
        let sink = Mutex::new(BufWriter::new(file));
        let cursor = AtomicUsize::new(0);
        let threads = if cfg.threads == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
        } else {
            cfg.threads
        };
        let fresh: Mutex<Vec<(usize, usize, f64)>> = Mutex::new(Vec::with_capacity(new_trials));
        // Persists one finished trial: line-atomic append + flush, so a
        // kill between records loses at most the torn tail.
        let commit = |cell: usize, rep: usize, seed: u64, value: f64| {
            let record = TrialRecord { cell, repeat: rep, seed, value };
            {
                let mut w = sink.lock().expect("sink lock");
                let line = json::render(&record.to_value());
                writeln!(w, "{line}").expect("append trial record");
                w.flush().expect("flush trial record");
            }
            fresh.lock().expect("fresh lock").push((cell, rep, value));
        };

        if cfg.batched {
            // Batched mode: the work unit is one (cell, repeat) trial,
            // exactly as in per-observation mode — the batch axis
            // lives *inside* a trial (its evaluation episodes run in
            // lock-step through the per-worker BatchInferCtx arena),
            // so per-trial sharding costs no batching opportunity
            // while keeping per-trial durability: every finished trial
            // is persisted before the next one starts, and a kill
            // loses at most the trial in flight.
            std::thread::scope(|scope| {
                for _ in 0..threads.min(new_trials) {
                    scope.spawn(|| {
                        let mut ctx = frlfi::nn::BatchInferCtx::new();
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            let Some(&(cell, rep)) = pending.get(i) else { break };
                            let seed =
                                derive_seed(campaign.master_seed, (cell * repeats + rep) as u64);
                            let values = campaign.run_trials_batched(cell, &[seed], &mut ctx);
                            commit(cell, rep, seed, values[0]);
                        }
                    });
                }
            });
        } else {
            std::thread::scope(|scope| {
                for _ in 0..threads.min(new_trials) {
                    scope.spawn(|| {
                        // One inference scratch arena per worker, reused
                        // across every trial this worker evaluates.
                        let mut ctx = frlfi::nn::InferCtx::new();
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            let Some(&(cell, rep)) = pending.get(i) else { break };
                            let seed =
                                derive_seed(campaign.master_seed, (cell * repeats + rep) as u64);
                            let value = campaign.run_trial_ctx(cell, seed, &mut ctx);
                            commit(cell, rep, seed, value);
                        }
                    });
                }
            });
        }

        for (cell, rep, value) in fresh.into_inner().expect("workers joined") {
            if done[cell][rep].is_none() {
                completed += 1;
            }
            done[cell][rep] = Some(value);
        }
    }

    // Finalize when complete: per-cell stats in repeat order, exactly
    // as the in-process sweep engine folds them.
    let (stats, table, wide_table) = if completed == total {
        let stats: Vec<CellStats> = done
            .iter()
            .map(|cell| {
                let values: Vec<f64> = cell.iter().map(|v| v.expect("campaign complete")).collect();
                aggregate_in_order(&values)
            })
            .collect();
        let table = render_table(campaign, &stats);
        let wide_table = cfg.wide_summary.then(|| render_wide_table(campaign, &stats));
        let mut text = table.render();
        if let Some(wide) = &wide_table {
            text.push('\n');
            text.push_str(&wide.render());
        }
        std::fs::write(dir.join("summary.txt"), text).map_err(|e| format!("write summary: {e}"))?;
        (Some(stats), Some(table), wide_table)
    } else {
        (None, None, None)
    };

    Ok(CampaignOutcome {
        completed_trials: completed,
        total_trials: total,
        new_trials,
        stats,
        table,
        wide_table,
    })
}

/// Renders the wide per-cell spread table: one row per campaign cell
/// (row-major in the scenario's grid), with the PR 2 `CellStats`
/// spread columns — mean, min, max and the 95% confidence-interval
/// half-width of the mean — that the standard means grid omits.
pub fn render_wide_table(campaign: &Campaign, stats: &[CellStats]) -> Table {
    let title = format!(
        "Campaign {} ({:?} scale): per-cell spread over {} repeats",
        campaign.scenario.name, campaign.scenario.scale, campaign.repeats,
    );
    let mut table =
        Table::new(title, "cell", vec!["mean".into(), "min".into(), "max".into(), "ci95".into()])
            .with_precision(2);
    let labels: Vec<String> = match &campaign.grid {
        CellGrid::BerByEpisode { bers, episodes } => bers
            .iter()
            .flat_map(|&b| {
                episodes
                    .iter()
                    .map(move |&e| format!("ber {} @ ep{e}", frlfi::experiments::ber_label(b)))
            })
            .collect(),
        CellGrid::FleetByBer { sizes, bers } => sizes
            .iter()
            .flat_map(|&n| bers.iter().map(move |&b| format!("n={n} @ ber {b}")))
            .collect(),
    };
    for (label, s) in labels.into_iter().zip(stats.iter()) {
        table.push_row(label, vec![s.mean, s.min, s.max, s.ci95_half_width()]);
    }
    table
}

/// Renders campaign statistics in the scenario's grid layout.
pub fn render_table(campaign: &Campaign, stats: &[CellStats]) -> Table {
    let title = format!(
        "Campaign {} ({:?} scale): {}",
        campaign.scenario.name,
        campaign.scenario.scale,
        match campaign.trials {
            crate::spec::Trials::Grid(_) => "success rate (%)",
            crate::spec::Trials::Drone(_) => "flight distance (m)",
        }
    );
    match &campaign.grid {
        CellGrid::BerByEpisode { bers, episodes } => {
            frlfi::experiments::harness::heatmap_table(&title, bers, episodes, stats, 1)
        }
        CellGrid::FleetByBer { sizes, bers } => {
            let mut table =
                Table::new(title, "fleet", bers.iter().map(|b| format!("ber {b}")).collect());
            for (si, &n) in sizes.iter().enumerate() {
                let row: Vec<f64> =
                    (0..bers.len()).map(|bi| stats[si * bers.len() + bi].mean).collect();
                table.push_row(format!("n={n}"), row);
            }
            table
        }
    }
}
