//! `campaign top`: a live, self-refreshing view of what a campaign's
//! fleet is doing *right now* — `status` + `profile`, merged, cheap
//! enough to re-render every second.
//!
//! Every data source is tailed incrementally through
//! [`crate::coord::JsonlTailReader`]: each of `trials.jsonl`,
//! `claims.jsonl`, `quarantine.jsonl` and every `obs/worker-*.jsonl`
//! stream keeps a per-file byte offset and each tick folds **only the
//! appended bytes** — a tick against an idle campaign reads zero log
//! bytes however large the logs have grown (the [`Frame`] reports the
//! exact count, which is how the incremental property is tested).
//!
//! Per worker, a frame shows the last completed phase span and trial,
//! completed-trial count and observed rate, heartbeat age (claim
//! records when the campaign is shared; obs event stamps otherwise),
//! quarantine / chaos-injection / io-retry counters, and a straggler
//! flag: a worker whose rate z-score across the fleet falls below
//! −2.0 is marked `STRAGGLER`. The footer extrapolates an ETA from
//! the aggregate rate, exactly like `campaign profile`.

use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

use serde::Value;

use crate::coord::{FoldError, JsonlTailReader};
use crate::profile::OBS_DIR;

/// Options for [`run`].
#[derive(Debug, Clone, Copy)]
pub struct TopOptions {
    /// Render one frame and exit (non-TTY / CI mode).
    pub once: bool,
    /// Milliseconds between refreshes in live mode.
    pub interval_ms: u64,
}

impl Default for TopOptions {
    fn default() -> Self {
        TopOptions { once: false, interval_ms: 1000 }
    }
}

/// One worker's live view, folded incrementally from its obs stream.
#[derive(Debug, Default)]
struct WorkerView {
    /// Completed `trial` spans and their total µs.
    trials: u64,
    trial_us: u64,
    /// Name of the most recent span event — the last finished phase.
    last_span: String,
    /// Trial id of the most recent trial span.
    last_trial: Option<u64>,
    /// Wall window of the stream (ms since epoch).
    first_ts_ms: u64,
    last_ts_ms: u64,
    /// Folded counters: chaos injections, io retries, quarantines.
    chaos: u64,
    retries: u64,
    quarantined: u64,
}

impl WorkerView {
    fn note_ts(&mut self, ts: u64) {
        if ts == 0 {
            return;
        }
        if self.first_ts_ms == 0 || ts < self.first_ts_ms {
            self.first_ts_ms = ts;
        }
        self.last_ts_ms = self.last_ts_ms.max(ts);
    }

    /// Observed completion rate over the stream's wall window.
    fn rate(&self) -> Option<f64> {
        let window = self.last_ts_ms.saturating_sub(self.first_ts_ms) as f64 / 1e3;
        (window > 1e-3 && self.trials > 0).then(|| self.trials as f64 / window)
    }

    fn fold(&mut self, v: &Value) {
        let get = |k: &str| v.get(k).and_then(Value::as_int).filter(|&n| n >= 0).map(|n| n as u64);
        if let Some(ts) = get("ts_ms") {
            self.note_ts(ts);
        }
        let Some(kind) = v.get("kind").and_then(Value::as_str) else { return };
        match kind {
            "span" => {
                let Some(name) = v.get("name").and_then(Value::as_str) else { return };
                self.last_span = name.to_owned();
                if name == "trial" {
                    self.trials += 1;
                    self.trial_us += get("dur_us").unwrap_or(0);
                    self.last_trial = get("trial");
                }
            }
            "count" => {
                let (Some(name), Some(n)) = (v.get("name").and_then(Value::as_str), get("n"))
                else {
                    return;
                };
                if name.starts_with("chaos.inject") {
                    self.chaos += n;
                } else if name.starts_with("io.retry") {
                    self.retries += n;
                } else if name.ends_with(".quarantined") {
                    self.quarantined += n;
                }
            }
            _ => {}
        }
    }
}

/// The incremental fold state behind `campaign top`. Create once,
/// [`tick`](TopState::tick) per frame.
pub struct TopState {
    dir: PathBuf,
    /// Campaign identity, loaded once from the manifest.
    name: String,
    scale: String,
    total_trials: usize,
    /// Distinct `(cell, repeat)` pairs seen in `trials.jsonl`.
    completed: BTreeSet<(u64, u64)>,
    trials_tail: JsonlTailReader,
    claims_tail: JsonlTailReader,
    /// Per-worker latest claim/heartbeat stamp (ms since epoch).
    claim_seen: BTreeMap<String, u64>,
    quarantine_tail: JsonlTailReader,
    quarantine_records: u64,
    /// One tail per obs stream, keyed by file name; discovered on
    /// every tick so late-joining workers appear.
    obs: BTreeMap<String, (JsonlTailReader, WorkerView)>,
}

/// One rendered frame plus its read-cost accounting.
#[derive(Debug, Clone)]
pub struct Frame {
    /// The rendered dashboard text.
    pub text: String,
    /// Log bytes consumed by this tick across every tailed file —
    /// zero when nothing was appended since the previous tick.
    pub bytes_read: u64,
}

impl TopState {
    /// Opens campaign directory `dir`: reads the manifest once; all
    /// log folding happens per [`tick`](TopState::tick).
    ///
    /// # Errors
    ///
    /// A directory without a readable `campaign.toml` manifest.
    pub fn new(dir: &Path) -> Result<TopState, String> {
        let scenario = crate::runner::load_scenario(&dir.join("campaign.toml"))?;
        let campaign = scenario.expand().map_err(|e| e.to_string())?;
        Ok(TopState {
            dir: dir.to_path_buf(),
            name: scenario.name.clone(),
            scale: format!("{:?}", scenario.scale),
            total_trials: campaign.total_trials(),
            completed: BTreeSet::new(),
            trials_tail: JsonlTailReader::new(dir.join("trials.jsonl"), "trials.read"),
            claims_tail: JsonlTailReader::new(dir.join(crate::coord::CLAIMS_FILE), "claims.read"),
            claim_seen: BTreeMap::new(),
            quarantine_tail: JsonlTailReader::new(
                dir.join(crate::quarantine::QUARANTINE_FILE),
                "quarantine.read",
            ),
            quarantine_records: 0,
            obs: BTreeMap::new(),
        })
    }

    /// Discovers obs streams that appeared since the last tick.
    fn discover_obs(&mut self) {
        let obs_dir = self.dir.join(OBS_DIR);
        let Ok(entries) = std::fs::read_dir(&obs_dir) else { return };
        for path in entries.filter_map(|e| e.ok().map(|e| e.path())) {
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else { continue };
            if !name.starts_with("worker-") || path.extension().is_none_or(|x| x != "jsonl") {
                continue;
            }
            self.obs.entry(name.to_owned()).or_insert_with(|| {
                (JsonlTailReader::new(path.clone(), "obs.read"), WorkerView::default())
            });
        }
    }

    /// Folds everything appended since the last tick and renders a
    /// frame.
    ///
    /// # Errors
    ///
    /// I/O failures reading a tailed log (missing files are fine —
    /// they simply have not been created yet).
    pub fn tick(&mut self) -> Result<Frame, String> {
        self.discover_obs();
        let mut bytes = 0u64;

        let before = self.trials_tail.offset();
        let completed = &mut self.completed;
        self.trials_tail.refresh(|v| {
            let cell = v.get("cell").and_then(Value::as_int);
            let rep = v.get("repeat").and_then(Value::as_int);
            if let (Some(c), Some(r)) = (cell, rep) {
                if c >= 0 && r >= 0 {
                    completed.insert((c as u64, r as u64));
                    return Ok(());
                }
            }
            Err(FoldError::Skip("trial record missing cell/repeat".into()))
        })?;
        bytes += self.trials_tail.offset() - before;

        let before = self.claims_tail.offset();
        let claim_seen = &mut self.claim_seen;
        self.claims_tail.refresh(|v| {
            let worker = v.get("worker").and_then(Value::as_str);
            let ts = v.get("ts_ms").and_then(Value::as_int).unwrap_or(0);
            if let Some(w) = worker {
                if ts > 0 {
                    let e = claim_seen.entry(w.to_owned()).or_insert(0);
                    *e = (*e).max(ts as u64);
                }
            }
            Ok(())
        })?;
        bytes += self.claims_tail.offset() - before;

        let before = self.quarantine_tail.offset();
        let qcount = &mut self.quarantine_records;
        self.quarantine_tail.refresh(|v| {
            if v.get("kind").and_then(Value::as_str).is_some() {
                *qcount += 1;
            }
            Ok(())
        })?;
        bytes += self.quarantine_tail.offset() - before;

        for (tail, view) in self.obs.values_mut() {
            let before = tail.offset();
            tail.refresh(|v| {
                view.fold(&v);
                Ok(())
            })?;
            bytes += tail.offset() - before;
        }

        Ok(Frame { text: self.render(), bytes_read: bytes })
    }

    fn render(&self) -> String {
        let now = crate::coord::now_ms();
        let completed = self.completed.len();
        let pct = if self.total_trials == 0 {
            100.0
        } else {
            100.0 * completed as f64 / self.total_trials as f64
        };
        let mut out = format!(
            "campaign top — {} ({}) — {completed}/{} trials ({pct:.1}%)\n",
            self.name, self.scale, self.total_trials
        );
        // Fleet rate statistics for the straggler z-score.
        let rates: Vec<f64> = self.obs.values().filter_map(|(_, v)| v.rate()).collect();
        let mean =
            if rates.is_empty() { 0.0 } else { rates.iter().sum::<f64>() / rates.len() as f64 };
        let std = if rates.len() < 2 {
            0.0
        } else {
            (rates.iter().map(|r| (r - mean).powi(2)).sum::<f64>() / rates.len() as f64).sqrt()
        };
        out.push_str(&format!(
            "{:<14} {:>10} {:>7} {:>8} {:>8} {:>8} {:>6} {:>6} {:>6}  {}\n",
            "worker",
            "phase",
            "trial",
            "trials",
            "rate/s",
            "hb age",
            "quar",
            "chaos",
            "retry",
            "flag"
        ));
        let mut fleet_rate = 0.0;
        for (file, (_, view)) in &self.obs {
            let worker = file.trim_end_matches(".jsonl").strip_prefix("worker-").unwrap_or(file);
            let rate = view.rate();
            fleet_rate += rate.unwrap_or(0.0);
            // Heartbeat: a shared worker renews claims; exclusive
            // workers only have their obs stamps.
            let last = self.claim_seen.get(worker).copied().unwrap_or(0).max(view.last_ts_ms);
            let hb = if last == 0 {
                "?".to_owned()
            } else {
                format!("{:.1}s", now.saturating_sub(last) as f64 / 1e3)
            };
            let z = match (rate, std > 1e-9) {
                (Some(r), true) => Some((r - mean) / std),
                _ => None,
            };
            let flag = match z {
                Some(z) if z <= -2.0 => "STRAGGLER",
                _ => "",
            };
            out.push_str(&format!(
                "{:<14} {:>10} {:>7} {:>8} {:>8} {:>8} {:>6} {:>6} {:>6}  {}\n",
                worker,
                if view.last_span.is_empty() { "-" } else { &view.last_span },
                view.last_trial.map_or("-".to_owned(), |t| t.to_string()),
                view.trials,
                rate.map_or("-".to_owned(), |r| format!("{r:.2}")),
                hb,
                view.quarantined,
                view.chaos,
                view.retries,
                flag,
            ));
        }
        if self.obs.is_empty() {
            out.push_str("(no obs streams yet — did this campaign run with --obs?)\n");
        }
        if self.quarantine_records > 0 {
            out.push_str(&format!("quarantine records: {}\n", self.quarantine_records));
        }
        let remaining = self.total_trials.saturating_sub(completed);
        if remaining == 0 {
            out.push_str("campaign complete\n");
        } else if fleet_rate > 1e-9 {
            out.push_str(&format!(
                "eta: ~{:.0} s for {remaining} remaining trials at {fleet_rate:.2} trials/s\n",
                remaining as f64 / fleet_rate
            ));
        } else {
            out.push_str(&format!("{remaining} trials remaining (no observed rate yet)\n"));
        }
        out
    }
}

/// Runs the dashboard: one frame in `--once` mode, otherwise a
/// self-refreshing loop (ANSI clear + redraw every
/// [`TopOptions::interval_ms`]) until interrupted.
///
/// # Errors
///
/// See [`TopState::new`] / [`TopState::tick`].
pub fn run(dir: &Path, opts: &TopOptions) -> Result<(), String> {
    let mut state = TopState::new(dir)?;
    if opts.once {
        let frame = state.tick()?;
        print!("{}", frame.text);
        return Ok(());
    }
    loop {
        let frame = state.tick()?;
        // Clear screen + home, then the frame: flicker-free enough
        // at one frame per second without pulling in a TUI stack.
        print!("\x1b[2J\x1b[H{}", frame.text);
        use std::io::Write as _;
        let _ = std::io::stdout().flush();
        std::thread::sleep(std::time::Duration::from_millis(opts.interval_ms.max(100)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("frlfi-top-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(dir.join(OBS_DIR)).unwrap();
        dir
    }

    /// A minimal manifest top can load (mirrors the builtin smoke
    /// scenario closely enough to expand).
    fn write_manifest(dir: &Path) {
        let scenario =
            crate::registry::builtin("fig3a", frlfi::Scale::Smoke).expect("builtin fig3a");
        std::fs::write(dir.join("campaign.toml"), scenario.to_toml()).unwrap();
    }

    #[test]
    fn ticks_read_only_appended_bytes() {
        let dir = tmpdir("incremental");
        write_manifest(&dir);
        let obs = dir.join(OBS_DIR).join("worker-w0.jsonl");
        let mut f = std::fs::File::create(&obs).unwrap();
        writeln!(f, r#"{{"v":2,"kind":"meta","worker":"w0","pid":1,"ts_ms":1000,"mono_us":1}}"#)
            .unwrap();
        writeln!(
            f,
            r#"{{"v":2,"kind":"span","name":"trial","trial":0,"dur_us":5,"ts_ms":2000,"id":1,"tid":1,"mono_us":9}}"#
        )
        .unwrap();
        f.flush().unwrap();

        let mut state = TopState::new(&dir).unwrap();
        let first = state.tick().unwrap();
        assert!(first.bytes_read > 0);
        assert!(first.text.contains("w0"), "{}", first.text);

        // Nothing appended: the next tick must read zero bytes.
        let second = state.tick().unwrap();
        assert_eq!(second.bytes_read, 0, "idle tick re-read log bytes");

        // One appended line: the third tick reads exactly that line.
        let line = r#"{"v":2,"kind":"span","name":"trial","trial":1,"dur_us":5,"ts_ms":3000,"id":2,"tid":1,"mono_us":20}"#;
        writeln!(f, "{line}").unwrap();
        f.flush().unwrap();
        let third = state.tick().unwrap();
        assert_eq!(third.bytes_read, line.len() as u64 + 1);
        assert!(third.text.contains(" 2 "), "two trials now: {}", third.text);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn renders_progress_quarantine_and_straggler_columns() {
        let dir = tmpdir("render");
        write_manifest(&dir);
        // Two workers: w0 fast, w1 slow with chaos/retry counters.
        let w = |name: &str, trials: usize, gap_ms: u64| {
            let mut text = format!(
                "{{\"v\":2,\"kind\":\"meta\",\"worker\":\"{name}\",\"pid\":1,\"ts_ms\":1000,\"mono_us\":1}}\n"
            );
            for i in 0..trials {
                text.push_str(&format!(
                    r#"{{"v":2,"kind":"span","name":"trial","trial":{i},"dur_us":5,"ts_ms":{},"id":{},"tid":1,"mono_us":9}}"#,
                    1000 + (i as u64 + 1) * gap_ms,
                    i + 1,
                ));
                text.push('\n');
            }
            std::fs::write(dir.join(OBS_DIR).join(format!("worker-{name}.jsonl")), text).unwrap();
        };
        w("w0", 20, 10);
        w("w1", 20, 1000);
        std::fs::write(dir.join(OBS_DIR).join("worker-w1.jsonl"), {
            let mut t = std::fs::read_to_string(dir.join(OBS_DIR).join("worker-w1.jsonl")).unwrap();
            t.push_str(
                r#"{"v":2,"kind":"count","name":"chaos.inject.read","n":3,"ts_ms":2000,"tid":1}"#,
            );
            t.push('\n');
            t.push_str(r#"{"v":2,"kind":"count","name":"io.retry","n":4,"ts_ms":2000,"tid":1}"#);
            t.push('\n');
            t
        })
        .unwrap();
        std::fs::write(
            dir.join(crate::quarantine::QUARANTINE_FILE),
            r#"{"kind":"trial","trial":1,"cell":0,"repeat":1,"worker":"w1","error":"x","ts_ms":1}"#
                .to_owned()
                + "\n",
        )
        .unwrap();
        let mut state = TopState::new(&dir).unwrap();
        let frame = state.tick().unwrap();
        assert!(frame.text.contains("w0"), "{}", frame.text);
        assert!(frame.text.contains("quarantine records: 1"), "{}", frame.text);
        // w1 is ~100× slower than w0; with two workers the z-score of
        // the slow one is -1 (population σ of two points), so assert
        // the columns render rather than the flag fire here.
        assert!(frame.text.contains("chaos"), "{}", frame.text);
        let w1_line = frame.text.lines().find(|l| l.starts_with("w1")).unwrap();
        assert!(w1_line.contains('3') && w1_line.contains('4'), "{w1_line}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn straggler_flag_fires_below_minus_two_sigma() {
        // Synthetic views: many equal rates plus one far-low outlier.
        let mut state = TopState {
            dir: PathBuf::new(),
            name: "t".into(),
            scale: "Smoke".into(),
            total_trials: 100,
            completed: BTreeSet::new(),
            trials_tail: JsonlTailReader::new(PathBuf::from("/nonexistent"), "trials.read"),
            claims_tail: JsonlTailReader::new(PathBuf::from("/nonexistent"), "claims.read"),
            claim_seen: BTreeMap::new(),
            quarantine_tail: JsonlTailReader::new(PathBuf::from("/nonexistent"), "quarantine.read"),
            quarantine_records: 0,
            obs: BTreeMap::new(),
        };
        let mk = |trials: u64, window_ms: u64| WorkerView {
            trials,
            trial_us: 0,
            last_span: "trial".into(),
            last_trial: Some(0),
            first_ts_ms: 1000,
            last_ts_ms: 1000 + window_ms,
            chaos: 0,
            retries: 0,
            quarantined: 0,
        };
        for i in 0..9 {
            state.obs.insert(
                format!("worker-w{i}.jsonl"),
                (JsonlTailReader::new(PathBuf::from("/nonexistent"), "obs.read"), mk(100, 10_000)),
            );
        }
        state.obs.insert(
            "worker-slow.jsonl".into(),
            (JsonlTailReader::new(PathBuf::from("/nonexistent"), "obs.read"), mk(1, 10_000)),
        );
        let text = state.render();
        let slow = text.lines().find(|l| l.starts_with("slow")).unwrap();
        assert!(slow.contains("STRAGGLER"), "{text}");
        for l in text.lines().filter(|l| l.starts_with("w")) {
            assert!(!l.contains("STRAGGLER"), "{text}");
        }
    }
}
