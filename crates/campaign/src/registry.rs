//! Named built-in scenarios.
//!
//! The `fig*` entries expand to exactly the trial cells their
//! `frlfi::experiments` figure drivers run (same geometry, same master
//! seed), so `campaign run fig3a` reproduces the Fig. 3a table. The
//! remaining entries are new scenario variants beyond the paper's
//! evaluation.

use frlfi::experiments::DEFAULT_SEED;
use frlfi::Scale;

use crate::spec::{MitigationSpec, Scenario, SideKind, SystemKind};

/// One registry entry.
#[derive(Debug, Clone, Copy)]
pub struct RegistryEntry {
    /// The scenario name used on the CLI.
    pub name: &'static str,
    /// One-line description.
    pub description: &'static str,
    builder: fn(Scale) -> Scenario,
}

impl RegistryEntry {
    /// Builds the scenario at `scale`.
    pub fn scenario(&self, scale: Scale) -> Scenario {
        (self.builder)(scale)
    }
}

/// All built-in scenarios.
pub fn entries() -> &'static [RegistryEntry] {
    &[
        RegistryEntry {
            name: "fig3a",
            description: "GridWorld training, agent-side faults (paper Fig. 3a)",
            builder: fig3a,
        },
        RegistryEntry {
            name: "fig3b",
            description: "GridWorld training, server-side faults (paper Fig. 3b)",
            builder: fig3b,
        },
        RegistryEntry {
            name: "fig3c",
            description: "GridWorld training, single-agent baseline (paper Fig. 3c)",
            builder: fig3c,
        },
        RegistryEntry {
            name: "fig5a",
            description: "DroneNav fine-tuning, agent-side faults (paper Fig. 5a)",
            builder: fig5a,
        },
        RegistryEntry {
            name: "fig5b",
            description: "DroneNav fine-tuning, server-side faults (paper Fig. 5b)",
            builder: fig5b,
        },
        RegistryEntry {
            name: "fig7a",
            description: "GridWorld server faults with checkpoint mitigation (paper Fig. 7a)",
            builder: fig7a,
        },
        RegistryEntry {
            name: "grid-dynamic",
            description: "NEW: dynamic-obstacle GridWorld layout under agent faults",
            builder: grid_dynamic,
        },
        RegistryEntry {
            name: "grid-dropout",
            description: "NEW: federated rounds with 20% agent dropout under server faults",
            builder: grid_dropout,
        },
        RegistryEntry {
            name: "grid-fleet",
            description: "NEW: heterogeneous fleet sizes × BER (mid-training agent faults)",
            builder: grid_fleet,
        },
    ]
}

/// Looks a built-in up by name.
pub fn builtin(name: &str, scale: Scale) -> Option<Scenario> {
    entries().iter().find(|e| e.name == name).map(|e| e.scenario(scale))
}

fn fig3a(scale: Scale) -> Scenario {
    let mut s = Scenario::new("fig3a", SystemKind::GridWorld, scale);
    s.fault.side = SideKind::Agent;
    s
}

fn fig3b(scale: Scale) -> Scenario {
    let mut s = Scenario::new("fig3b", SystemKind::GridWorld, scale);
    s.fault.side = SideKind::Server;
    s
}

fn fig3c(scale: Scale) -> Scenario {
    let mut s = Scenario::new("fig3c", SystemKind::GridWorld, scale);
    s.fault.side = SideKind::Agent;
    s.fleet.agents = Some(1);
    s
}

fn fig5a(scale: Scale) -> Scenario {
    let mut s = Scenario::new("fig5a", SystemKind::DroneNav, scale);
    s.fault.side = SideKind::Agent;
    s.master_seed = Some(DEFAULT_SEED ^ 0xF15);
    s
}

fn fig5b(scale: Scale) -> Scenario {
    let mut s = Scenario::new("fig5b", SystemKind::DroneNav, scale);
    s.fault.side = SideKind::Server;
    s.master_seed = Some(DEFAULT_SEED ^ 0xF15);
    s
}

fn fig7a(scale: Scale) -> Scenario {
    let mut s = Scenario::new("fig7a", SystemKind::GridWorld, scale);
    s.fault.side = SideKind::Server;
    s.master_seed = Some(DEFAULT_SEED ^ 0x7A);
    // Fig. 7a's geometry diverges from the Fig. 3 defaults: a trimmed
    // BER grid, a smoke late-inject with recovery room, and a full
    // grid without the final ep995 point; see experiments::fig7.
    s.fault.bers = match scale {
        Scale::Smoke => vec![0.0, 0.2],
        Scale::Bench => vec![0.0, 0.02, 0.05, 0.1, 0.2],
        Scale::Full => vec![0.0, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5],
    };
    s.fault.inject_episodes = match scale {
        Scale::Smoke => vec![40, 110],
        Scale::Bench => vec![90, 240, 390, 510, 570, 595],
        Scale::Full => (0..10).map(|i| 100 * i + 50).collect(),
    };
    s.mitigation = Some(MitigationSpec {
        p_percent: 25.0,
        k_consecutive: scale.pick(4, 10, 50),
        checkpoint_interval: 5,
    });
    s
}

fn grid_dynamic(scale: Scale) -> Scenario {
    let mut s = Scenario::new("grid-dynamic", SystemKind::GridWorld, scale);
    s.env.layout = crate::spec::LayoutKind::DynamicObstacles;
    s.fault.side = SideKind::Agent;
    s.master_seed = Some(DEFAULT_SEED ^ 0xD1A);
    s
}

fn grid_dropout(scale: Scale) -> Scenario {
    let mut s = Scenario::new("grid-dropout", SystemKind::GridWorld, scale);
    s.fault.side = SideKind::Server;
    s.fleet.dropout = Some(0.2);
    s.master_seed = Some(DEFAULT_SEED ^ 0xD07);
    s
}

fn grid_fleet(scale: Scale) -> Scenario {
    let mut s = Scenario::new("grid-fleet", SystemKind::GridWorld, scale);
    s.fault.side = SideKind::Agent;
    s.fleet.agents_sweep = scale.pick(vec![1, 2, 3], vec![1, 2, 4, 8], vec![1, 4, 8, 12]);
    s.master_seed = Some(DEFAULT_SEED ^ 0xF1E);
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_builtins_expand_at_every_scale() {
        // Expansion is declaration only (drone pre-training is lazy),
        // so every entry expands cheaply at every scale.
        for e in entries() {
            for scale in [Scale::Smoke, Scale::Bench, Scale::Full] {
                let s = e.scenario(scale);
                let c = s.expand().unwrap_or_else(|err| panic!("{} @ {scale:?}: {err}", e.name));
                assert!(!c.trials.is_empty());
                assert_eq!(c.grid.cell_count(), c.trials.len(), "{}", e.name);
            }
        }
    }

    #[test]
    fn fig_builtins_expand_to_their_drivers_cells() {
        use crate::spec::Trials;
        use frlfi::experiments::{fig3, fig7};
        use frlfi::fault::FaultSide;
        for scale in [Scale::Smoke, Scale::Bench, Scale::Full] {
            let cases: Vec<(&str, Vec<frlfi::experiments::harness::GridTrial>)> = vec![
                ("fig3a", fig3::heatmap_cells(scale, Some(FaultSide::AgentSide))),
                ("fig3b", fig3::heatmap_cells(scale, Some(FaultSide::ServerSide))),
                ("fig3c", fig3::heatmap_cells(scale, None)),
                ("fig7a", fig7::gridworld_cells(scale)),
            ];
            for (name, driver_cells) in cases {
                let campaign = builtin(name, scale).expect("built-in").expand().expect("expands");
                match &campaign.trials {
                    Trials::Grid(cells) => {
                        assert_eq!(cells, &driver_cells, "{name} @ {scale:?}");
                    }
                    Trials::Drone(_) => panic!("grid campaign expected"),
                }
            }
        }
    }

    #[test]
    fn builtin_lookup() {
        assert!(builtin("fig3a", Scale::Smoke).is_some());
        assert!(builtin("no-such", Scale::Smoke).is_none());
    }

    #[test]
    fn builtin_round_trips_through_toml() {
        for e in entries() {
            let s = e.scenario(Scale::Bench);
            let back = crate::spec::Scenario::from_toml(&s.to_toml())
                .unwrap_or_else(|err| panic!("{}: {err}", e.name));
            assert_eq!(s, back, "{}", e.name);
        }
    }
}
