//! Named built-in scenarios.
//!
//! The `fig*` entries expand to exactly the trial cells their
//! `frlfi::experiments` figure drivers run (same geometry, same master
//! seed), so `campaign run fig3a` reproduces the Fig. 3a table. The
//! remaining entries are scenario variants beyond the paper's
//! evaluation: dynamic-obstacle layouts, unreliable federated links
//! and heterogeneous fleets, for both systems.
//!
//! Entries are grouped by system and kept alphabetical within each
//! group, so `campaign list` output is deterministic and stable across
//! releases (a test enforces the ordering).

use frlfi::experiments::DEFAULT_SEED;
use frlfi::Scale;

use crate::spec::{MitigationSpec, Scenario, SideKind, StudySpec, SystemKind};

/// One registry entry.
#[derive(Debug, Clone, Copy)]
pub struct RegistryEntry {
    /// The scenario name used on the CLI.
    pub name: &'static str,
    /// Which system the scenario runs (entries are grouped by system).
    pub system: SystemKind,
    /// One-line description.
    pub description: &'static str,
    builder: fn(Scale) -> Scenario,
}

impl RegistryEntry {
    /// Builds the scenario at `scale`.
    pub fn scenario(&self, scale: Scale) -> Scenario {
        (self.builder)(scale)
    }
}

/// All built-in scenarios, grouped by system ([`SystemKind::GridWorld`]
/// first) and alphabetical by name within each group.
pub fn entries() -> &'static [RegistryEntry] {
    &[
        RegistryEntry {
            name: "datatypes",
            system: SystemKind::GridWorld,
            description: "per-datatype inference resilience study, train-once (paper §IV-C)",
            builder: datatypes,
        },
        RegistryEntry {
            name: "fig3a",
            system: SystemKind::GridWorld,
            description: "GridWorld training, agent-side faults (paper Fig. 3a)",
            builder: fig3a,
        },
        RegistryEntry {
            name: "fig3b",
            system: SystemKind::GridWorld,
            description: "GridWorld training, server-side faults (paper Fig. 3b)",
            builder: fig3b,
        },
        RegistryEntry {
            name: "fig3c",
            system: SystemKind::GridWorld,
            description: "GridWorld training, single-agent baseline (paper Fig. 3c)",
            builder: fig3c,
        },
        RegistryEntry {
            name: "fig4",
            system: SystemKind::GridWorld,
            description: "GridWorld inference faults, FRL vs single-agent (paper Fig. 4)",
            builder: fig4,
        },
        RegistryEntry {
            name: "fig7a",
            system: SystemKind::GridWorld,
            description: "GridWorld server faults with checkpoint mitigation (paper Fig. 7a)",
            builder: fig7a,
        },
        RegistryEntry {
            name: "fig8a",
            system: SystemKind::GridWorld,
            description: "GridWorld inference faults with range-detector mitigation (paper Fig. 8)",
            builder: fig8a,
        },
        RegistryEntry {
            name: "grid-dropout",
            system: SystemKind::GridWorld,
            description: "federated rounds with 20% agent dropout under server faults",
            builder: grid_dropout,
        },
        RegistryEntry {
            name: "grid-dynamic",
            system: SystemKind::GridWorld,
            description: "dynamic-obstacle GridWorld layout under agent faults",
            builder: grid_dynamic,
        },
        RegistryEntry {
            name: "grid-fleet",
            system: SystemKind::GridWorld,
            description: "heterogeneous fleet sizes × BER (mid-training agent faults)",
            builder: grid_fleet,
        },
        RegistryEntry {
            name: "layers",
            system: SystemKind::GridWorld,
            description: "per-layer inference resilience study, train-once (paper §IV-C)",
            builder: layers,
        },
        RegistryEntry {
            name: "drone-dropout",
            system: SystemKind::DroneNav,
            description: "drone fleet with 20% per-round dropout under server faults",
            builder: drone_dropout,
        },
        RegistryEntry {
            name: "drone-dynamic",
            system: SystemKind::DroneNav,
            description: "oscillating-obstacle corridors under agent faults",
            builder: drone_dynamic,
        },
        RegistryEntry {
            name: "drone-motion",
            system: SystemKind::DroneNav,
            description: "fast wide-sweep obstacle motion (explicit env.motion) under agent faults",
            builder: drone_motion,
        },
        RegistryEntry {
            name: "fig5a",
            system: SystemKind::DroneNav,
            description: "DroneNav fine-tuning, agent-side faults (paper Fig. 5a)",
            builder: fig5a,
        },
        RegistryEntry {
            name: "fig5b",
            system: SystemKind::DroneNav,
            description: "DroneNav fine-tuning, server-side faults (paper Fig. 5b)",
            builder: fig5b,
        },
        RegistryEntry {
            name: "fig8b",
            system: SystemKind::DroneNav,
            description: "DroneNav inference faults with range-detector mitigation (paper Fig. 8)",
            builder: fig8b,
        },
    ]
}

/// Looks a built-in up by name.
pub fn builtin(name: &str, scale: Scale) -> Option<Scenario> {
    entries().iter().find(|e| e.name == name).map(|e| e.scenario(scale))
}

fn fig3a(scale: Scale) -> Scenario {
    let mut s = Scenario::new("fig3a", SystemKind::GridWorld, scale);
    s.fault.side = SideKind::Agent;
    s
}

fn fig3b(scale: Scale) -> Scenario {
    let mut s = Scenario::new("fig3b", SystemKind::GridWorld, scale);
    s.fault.side = SideKind::Server;
    s
}

fn fig3c(scale: Scale) -> Scenario {
    let mut s = Scenario::new("fig3c", SystemKind::GridWorld, scale);
    s.fault.side = SideKind::Agent;
    s.fleet.agents = Some(1);
    s
}

fn fig5a(scale: Scale) -> Scenario {
    let mut s = Scenario::new("fig5a", SystemKind::DroneNav, scale);
    s.fault.side = SideKind::Agent;
    s.master_seed = Some(DEFAULT_SEED ^ 0xF15);
    s
}

fn fig5b(scale: Scale) -> Scenario {
    let mut s = Scenario::new("fig5b", SystemKind::DroneNav, scale);
    s.fault.side = SideKind::Server;
    s.master_seed = Some(DEFAULT_SEED ^ 0xF15);
    s
}

fn fig7a(scale: Scale) -> Scenario {
    let mut s = Scenario::new("fig7a", SystemKind::GridWorld, scale);
    s.fault.side = SideKind::Server;
    s.master_seed = Some(DEFAULT_SEED ^ 0x7A);
    // Fig. 7a's geometry diverges from the Fig. 3 defaults: a trimmed
    // BER grid, a smoke late-inject with recovery room, and a full
    // grid without the final ep995 point; see experiments::fig7.
    s.fault.bers = match scale {
        Scale::Smoke => vec![0.0, 0.2],
        Scale::Bench => vec![0.0, 0.02, 0.05, 0.1, 0.2],
        Scale::Full => vec![0.0, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5],
    };
    s.fault.inject_episodes = match scale {
        Scale::Smoke => vec![40, 110],
        Scale::Bench => vec![90, 240, 390, 510, 570, 595],
        Scale::Full => (0..10).map(|i| 100 * i + 50).collect(),
    };
    s.mitigation = Some(MitigationSpec {
        p_percent: 25.0,
        k_consecutive: scale.pick(4, 10, 50),
        checkpoint_interval: 5,
    });
    s
}

fn grid_dynamic(scale: Scale) -> Scenario {
    let mut s = Scenario::new("grid-dynamic", SystemKind::GridWorld, scale);
    s.env.layout = crate::spec::LayoutKind::DynamicObstacles;
    s.fault.side = SideKind::Agent;
    s.master_seed = Some(DEFAULT_SEED ^ 0xD1A);
    s
}

fn grid_dropout(scale: Scale) -> Scenario {
    let mut s = Scenario::new("grid-dropout", SystemKind::GridWorld, scale);
    s.fault.side = SideKind::Server;
    s.fleet.dropout = Some(0.2);
    s.master_seed = Some(DEFAULT_SEED ^ 0xD07);
    s
}

fn grid_fleet(scale: Scale) -> Scenario {
    let mut s = Scenario::new("grid-fleet", SystemKind::GridWorld, scale);
    s.fault.side = SideKind::Agent;
    s.fleet.agents_sweep = scale.pick(vec![1, 2, 3], vec![1, 2, 4, 8], vec![1, 4, 8, 12]);
    s.master_seed = Some(DEFAULT_SEED ^ 0xF1E);
    s
}

fn drone_dynamic(scale: Scale) -> Scenario {
    let mut s = Scenario::new("drone-dynamic", SystemKind::DroneNav, scale);
    s.env.layout = crate::spec::LayoutKind::DynamicObstacles;
    s.fault.side = SideKind::Agent;
    s.master_seed = Some(DEFAULT_SEED ^ 0xDD1A);
    s
}

fn drone_motion(scale: Scale) -> Scenario {
    let mut s = Scenario::new("drone-motion", SystemKind::DroneNav, scale);
    s.env.layout = crate::spec::LayoutKind::DynamicObstacles;
    // A harsher world than drone-dynamic's default (2 m over 24
    // steps): wider sweeps on a faster clock.
    s.env.motion = Some(crate::spec::MotionSpec { amplitude: 3.0, period: 16.0 });
    s.fault.side = SideKind::Agent;
    s.master_seed = Some(DEFAULT_SEED ^ 0xDD40);
    s
}

// The train-once / eval-many studies: each expands to a task DAG —
// train tasks that publish frozen weight artifacts, then eval trials
// over them — whose summary.txt is byte-identical to the sequential
// `experiments::fig4::run` / `fig8::*` / `datatypes::run` /
// `layers::run` drivers (the geometry supplies the master seed).

fn fig4(scale: Scale) -> Scenario {
    Scenario::study("fig4", StudySpec::Fig4, scale)
}

fn fig8a(scale: Scale) -> Scenario {
    Scenario::study("fig8a", StudySpec::Fig8a, scale)
}

fn fig8b(scale: Scale) -> Scenario {
    Scenario::study("fig8b", StudySpec::Fig8b, scale)
}

fn datatypes(scale: Scale) -> Scenario {
    Scenario::study("datatypes", StudySpec::Datatypes, scale)
}

fn layers(scale: Scale) -> Scenario {
    Scenario::study("layers", StudySpec::Layers, scale)
}

fn drone_dropout(scale: Scale) -> Scenario {
    let mut s = Scenario::new("drone-dropout", SystemKind::DroneNav, scale);
    s.fault.side = SideKind::Server;
    s.fleet.dropout = Some(0.2);
    s.master_seed = Some(DEFAULT_SEED ^ 0xDD07);
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_builtins_expand_at_every_scale() {
        // Expansion is declaration only (drone pre-training is lazy),
        // so every entry expands cheaply at every scale.
        for e in entries() {
            for scale in [Scale::Smoke, Scale::Bench, Scale::Full] {
                let s = e.scenario(scale);
                let c = s.expand().unwrap_or_else(|err| panic!("{} @ {scale:?}: {err}", e.name));
                assert!(!c.trials.is_empty());
                assert_eq!(c.grid.cell_count(), c.trials.len(), "{}", e.name);
                assert_eq!(s.system, e.system, "{}: entry system must match the scenario", e.name);
            }
        }
    }

    #[test]
    fn entries_are_grouped_by_system_and_alphabetical_within() {
        let list = entries();
        // GridWorld block first, DroneNav block second, no interleaving.
        let first_drone =
            list.iter().position(|e| e.system == SystemKind::DroneNav).expect("drone entries");
        assert!(
            list[..first_drone].iter().all(|e| e.system == SystemKind::GridWorld)
                && list[first_drone..].iter().all(|e| e.system == SystemKind::DroneNav),
            "entries must be grouped by system"
        );
        for block in [&list[..first_drone], &list[first_drone..]] {
            let names: Vec<&str> = block.iter().map(|e| e.name).collect();
            let mut sorted = names.clone();
            sorted.sort_unstable();
            assert_eq!(names, sorted, "entries must be alphabetical within each system");
        }
    }

    #[test]
    fn descriptions_carry_no_stale_markers() {
        for e in entries() {
            assert!(
                !e.description.contains("NEW:"),
                "{}: shipped scenarios must not advertise themselves as new",
                e.name
            );
        }
    }

    #[test]
    fn drone_variants_expand_with_their_knobs() {
        use crate::spec::Trials;
        use frlfi::DroneLayout;
        let c = builtin("drone-dynamic", Scale::Smoke).expect("built-in").expand().expect("ok");
        match &c.trials {
            Trials::Drone(t) => {
                assert!(t.iter().all(|t| t.layout == DroneLayout::DynamicObstacles));
                assert!(t.iter().all(|t| t.dropout.is_none()));
            }
            _ => panic!("drone campaign expected"),
        }
        let c = builtin("drone-dropout", Scale::Smoke).expect("built-in").expand().expect("ok");
        match &c.trials {
            Trials::Drone(t) => {
                assert!(t.iter().all(|t| t.layout == DroneLayout::Standard));
                assert!(t.iter().all(|t| t.dropout == Some(0.2)));
            }
            _ => panic!("drone campaign expected"),
        }
    }

    #[test]
    fn fig_builtins_expand_to_their_drivers_cells() {
        use crate::spec::Trials;
        use frlfi::experiments::{fig3, fig7};
        use frlfi::fault::FaultSide;
        for scale in [Scale::Smoke, Scale::Bench, Scale::Full] {
            let cases: Vec<(&str, Vec<frlfi::experiments::harness::GridTrial>)> = vec![
                ("fig3a", fig3::heatmap_cells(scale, Some(FaultSide::AgentSide))),
                ("fig3b", fig3::heatmap_cells(scale, Some(FaultSide::ServerSide))),
                ("fig3c", fig3::heatmap_cells(scale, None)),
                ("fig7a", fig7::gridworld_cells(scale)),
            ];
            for (name, driver_cells) in cases {
                let campaign = builtin(name, scale).expect("built-in").expand().expect("expands");
                match &campaign.trials {
                    Trials::Grid(cells) => {
                        assert_eq!(cells, &driver_cells, "{name} @ {scale:?}");
                    }
                    _ => panic!("grid campaign expected"),
                }
            }
        }
    }

    #[test]
    fn builtin_lookup() {
        assert!(builtin("fig3a", Scale::Smoke).is_some());
        assert!(builtin("drone-dynamic", Scale::Smoke).is_some());
        assert!(builtin("no-such", Scale::Smoke).is_none());
    }

    #[test]
    fn builtin_round_trips_through_toml() {
        for e in entries() {
            let s = e.scenario(Scale::Bench);
            let back = crate::spec::Scenario::from_toml(&s.to_toml())
                .unwrap_or_else(|err| panic!("{}: {err}", e.name));
            assert_eq!(s, back, "{}", e.name);
        }
    }
}
