//! Multi-process campaign coordination: the worker/lease subsystem.
//!
//! A campaign directory doubles as a **shared work queue**: N runner
//! processes (`campaign run --shared`, `campaign worker`) point at one
//! directory and split its `(cell × repeat)` trials between them
//! through an append-only claim log:
//!
//! ```text
//! <dir>/claims.jsonl — one JSON record per claim/renewal, append-only
//! ```
//!
//! ## Claim protocol
//!
//! Claim acquisition is **lock-free append + re-read arbitration** on
//! the fsync'd log — there is no lock file to leak when a worker dies:
//!
//! 1. read `trials.jsonl` (completed set) and `claims.jsonl`;
//! 2. pick an incomplete trial that is unclaimed, or whose winning
//!    claim's lease deadline has passed;
//! 3. append a [`ClaimRecord`] carrying this worker's id and a lease
//!    deadline (`now + lease_ms`), and fsync it;
//! 4. re-read the log and [`arbitrate`]: the worker owns the trial iff
//!    its record won. Losers simply move on to another trial.
//!
//! Arbitration is a pure function of log order: for each trial, the
//! highest claim *generation* wins, and within a generation the first
//! record in the log wins. A fresh claim uses generation 0; reaping an
//! expired lease appends generation `g + 1`. Because appends with
//! `O_APPEND` are atomic for these short records, every process that
//! re-reads the log agrees on the winner.
//!
//! ## Leases, heartbeats and reaping
//!
//! A claim is a *lease*, not a lock. The [`Coordinator`]'s heartbeat
//! thread appends renewal records (same trial, same generation, later
//! deadline) at `lease_ms / 3` cadence for every trial its process has
//! in flight, so healthy workers keep their claims indefinitely. When
//! a worker is SIGKILLed its renewals stop, the lease expires, and any
//! other worker re-claims the trial at the next generation.
//!
//! ## Why every race is benign
//!
//! Trial evaluation is a pure function of `(cell, seed)` with the seed
//! derived from the campaign master seed, so the worst outcome of any
//! coordination race — two workers running the same trial after a
//! clock-skewed reap, a slow worker finishing a trial that was already
//! re-claimed — is a **duplicate, bitwise-identical** record in
//! `trials.jsonl`, which the loader dedupes. Coordination affects who
//! burns the CPU, never what `summary.txt` says: an N-process campaign
//! is byte-identical to the single-process, single-thread run.

use std::collections::HashMap;
use std::io::{Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use serde::{Map, Value};

use crate::fmt::json;
use crate::io::{self, lock_recover};

/// File name of the claim log inside a campaign directory.
pub const CLAIMS_FILE: &str = "claims.jsonl";

/// The shortest usable lease: the heartbeat renews at `lease_ms / 3`
/// cadence on a 25 ms tick, so a lease below ~6 ticks cannot be
/// renewed reliably and the worker pathologically self-reaps —
/// every claim expires before its own heartbeat lands, burning CPU
/// on generation bumps and duplicate (if still bitwise-identical)
/// trial runs. [`CoordConfig::validate`] rejects such leases at
/// CLI/config level with a typed error.
pub const MIN_LEASE_MS: u64 = 150;

/// A rejected [`CoordConfig`] — the typed error `--lease-ms`
/// validation surfaces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoordConfigError {
    message: String,
}

impl std::fmt::Display for CoordConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for CoordConfigError {}

/// Milliseconds since the Unix epoch. Leases compare wall-clock time
/// across processes (and possibly machines); modest clock skew only
/// shifts *when* a stale lease is reaped, never what the campaign
/// computes.
pub fn now_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// One appended claim-log record: a claim or a heartbeat renewal
/// (renewals are claims for a trial/generation the worker already
/// holds; arbitration folds them into the winner's deadline).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClaimRecord {
    /// Flat trial index: `cell * repeats + repeat`.
    pub trial: usize,
    /// Claim generation: 0 for a fresh trial, `g + 1` when reaping the
    /// expired generation-`g` lease.
    pub generation: u64,
    /// Claiming worker's id.
    pub worker: String,
    /// Lease deadline, milliseconds since the Unix epoch.
    pub deadline_ms: u64,
    /// When the record was issued (ms since the Unix epoch). Purely
    /// informational — arbitration never reads it — it is what lets
    /// `campaign status` show per-worker elapsed time and heartbeat
    /// age. `0` on records from builds that predate the field.
    pub ts_ms: u64,
}

impl ClaimRecord {
    fn to_value(&self) -> Value {
        let mut m = Map::new();
        m.insert("trial".into(), Value::Int(self.trial as i64));
        m.insert("gen".into(), Value::Int(self.generation as i64));
        m.insert("worker".into(), Value::Str(self.worker.clone()));
        m.insert("deadline_ms".into(), Value::Int(self.deadline_ms as i64));
        m.insert("ts_ms".into(), Value::Int(self.ts_ms as i64));
        Value::Table(m)
    }

    fn from_value(v: &Value) -> Result<Self, String> {
        let get_int = |k: &str| {
            v.get(k)
                .and_then(Value::as_int)
                .ok_or_else(|| format!("claim record missing integer `{k}`"))
        };
        let worker = match v.get("worker") {
            Some(Value::Str(s)) => s.clone(),
            _ => return Err("claim record missing string `worker`".into()),
        };
        Ok(ClaimRecord {
            trial: get_int("trial")? as usize,
            generation: get_int("gen")? as u64,
            worker,
            deadline_ms: get_int("deadline_ms")? as u64,
            // Older logs predate the field; 0 reads as "unknown".
            ts_ms: v.get("ts_ms").and_then(Value::as_int).unwrap_or(0) as u64,
        })
    }
}

/// The arbitration winner for one trial.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrialClaim {
    /// Winning generation.
    pub generation: u64,
    /// Winning worker id.
    pub worker: String,
    /// Effective lease deadline: the maximum over the winner's records
    /// at the winning generation, so renewals extend the lease.
    pub deadline_ms: u64,
}

impl TrialClaim {
    /// Whether the lease has passed at wall-clock `now_ms`.
    pub fn expired(&self, now_ms: u64) -> bool {
        self.deadline_ms <= now_ms
    }
}

/// Folds one claim record into the arbitration state, in log order.
fn fold_claim(winners: &mut HashMap<usize, TrialClaim>, r: &ClaimRecord) {
    match winners.get_mut(&r.trial) {
        None => {
            winners.insert(
                r.trial,
                TrialClaim {
                    generation: r.generation,
                    worker: r.worker.clone(),
                    deadline_ms: r.deadline_ms,
                },
            );
        }
        Some(w) => {
            if r.generation > w.generation {
                *w = TrialClaim {
                    generation: r.generation,
                    worker: r.worker.clone(),
                    deadline_ms: r.deadline_ms,
                };
            } else if r.generation == w.generation && r.worker == w.worker {
                w.deadline_ms = w.deadline_ms.max(r.deadline_ms);
            }
            // Same generation, different worker: first in log order
            // already won; the later record is a lost race.
        }
    }
}

/// Resolves the claim log into one winner per trial — a pure function
/// of record order, so every process that reads the same log prefix
/// agrees on ownership. Per trial: the highest generation wins; within
/// a generation, the first record in log order wins; later records by
/// the winner at the winning generation extend the deadline.
pub fn arbitrate(records: &[ClaimRecord]) -> HashMap<usize, TrialClaim> {
    let mut winners: HashMap<usize, TrialClaim> = HashMap::new();
    for r in records {
        fold_claim(&mut winners, r);
    }
    winners
}

/// Splits `buf` into complete lines (each **excluding** its trailing
/// `\n`), returning them plus the number of bytes consumed. An
/// incomplete trailing piece — a record some writer is mid-append on,
/// or a dead writer's torn tail — is left unconsumed so the caller
/// retries it once it is completed (or healed into a full line).
fn complete_lines(buf: &[u8]) -> (Vec<&[u8]>, usize) {
    let mut lines = Vec::new();
    let mut consumed = 0;
    while let Some(pos) = buf[consumed..].iter().position(|&b| b == b'\n') {
        lines.push(&buf[consumed..consumed + pos]);
        consumed += pos + 1;
    }
    (lines, consumed)
}

/// How a [`JsonlTailReader`] fold rejects a parsed document.
pub(crate) enum FoldError {
    /// The record is structurally wrong but safely ignorable (claims
    /// are advisory; a dropped trial record just re-runs): warn with
    /// the line number and keep going.
    Skip(String),
    /// The record proves the log is not this campaign's (wrong
    /// coordinates or seed scheme): abort the refresh.
    Fatal(String),
}

/// The incremental JSONL tail reader behind every shared-queue log
/// view (claim arbitration state, trial completion state, full claim
/// loads): remembers the byte offset of the last complete line
/// parsed and, on refresh, reads and folds **only the appended
/// tail** — so a per-claim poll costs O(new records), not O(log),
/// however large the append-only log grows (heartbeat renewals grow
/// `claims.jsonl` without bound). Old bytes are never re-read, so a
/// permanently corrupt line warns once per process, not once per
/// poll; an incomplete trailing piece stays unconsumed until its
/// writer completes it (or a healer turns it into a full line).
pub(crate) struct JsonlTailReader {
    path: PathBuf,
    /// The retry/chaos tag of this log's reads (`claims.read`,
    /// `trials.read`).
    tag: &'static str,
    offset: u64,
    line_no: usize,
}

impl JsonlTailReader {
    pub(crate) fn new(path: PathBuf, tag: &'static str) -> Self {
        JsonlTailReader { path, tag, offset: 0, line_no: 0 }
    }

    /// Byte offset of the last complete line consumed: everything
    /// before it is never read again. `campaign top` sums offset
    /// deltas to report (and test) per-tick read cost.
    pub(crate) fn offset(&self) -> u64 {
        self.offset
    }

    /// Hands every complete line appended since the last refresh to
    /// `fold` as a parsed JSON document. Lines that are not JSON at
    /// all — torn fragments healed into interior lines — are skipped
    /// with a warning; `fold` decides whether a structurally wrong
    /// document is a [`FoldError::Skip`] or a [`FoldError::Fatal`].
    /// The read runs under the [`crate::io`] retry policy; the
    /// offset only advances on success, so a retried read re-reads
    /// the same tail.
    pub(crate) fn refresh(
        &mut self,
        mut fold: impl FnMut(Value) -> Result<(), FoldError>,
    ) -> Result<(), String> {
        let (tag, path, offset) = (self.tag, &self.path, self.offset);
        let buf = io::with_retry(tag, || {
            let mut file = match io::open_read(tag, path) {
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
                Err(e) => return Err(e),
                Ok(f) => f,
            };
            let len = file.metadata()?.len();
            if len <= offset {
                return Ok(Some(Vec::new()));
            }
            file.seek(SeekFrom::Start(offset))?;
            let mut buf = Vec::with_capacity((len - offset) as usize);
            io::read_to_end(tag, &mut file, &mut buf)?;
            Ok(Some(buf))
        })
        .map_err(|e| format!("read {}: {e}", self.path.display()))?;
        let Some(buf) = buf else { return Ok(()) }; // no log yet
        if buf.is_empty() {
            return Ok(()); // nothing appended since the last refresh
        }
        let (lines, consumed) = complete_lines(&buf);
        self.offset += consumed as u64;
        for raw in lines {
            self.line_no += 1;
            let line = String::from_utf8_lossy(raw);
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let outcome = match json::parse(line) {
                Ok(v) => fold(v),
                Err(e) => Err(FoldError::Skip(e.to_string())),
            };
            match outcome {
                Ok(()) => {}
                Err(FoldError::Skip(e)) => frlfi_obs::warn!(
                    "{} line {}: {e}; skipping line (a lost claim or trial record only \
                     costs a bitwise-identical re-run, so statistics are unaffected)",
                    self.path.display(),
                    self.line_no
                ),
                Err(FoldError::Fatal(e)) => {
                    return Err(format!("{} line {}: {e}", self.path.display(), self.line_no))
                }
            }
        }
        Ok(())
    }
}

/// An incrementally folded view of the claim log: a
/// [`JsonlTailReader`] whose fold is [`fold_claim`] — exact, because
/// arbitration is an order-based fold.
struct ClaimReader {
    tail: JsonlTailReader,
    state: HashMap<usize, TrialClaim>,
}

impl ClaimReader {
    fn new(dir: &Path) -> Self {
        ClaimReader {
            tail: JsonlTailReader::new(dir.join(CLAIMS_FILE), "claims.read"),
            state: HashMap::new(),
        }
    }

    /// Folds every complete line appended since the last refresh.
    fn refresh(&mut self) -> Result<(), String> {
        let state = &mut self.state;
        self.tail.refresh(|v| {
            let r = ClaimRecord::from_value(&v).map_err(FoldError::Skip)?;
            fold_claim(state, &r);
            Ok(())
        })
    }
}

/// The append-only claim log of one campaign directory.
#[derive(Debug, Clone)]
pub struct ClaimLog {
    path: PathBuf,
}

impl ClaimLog {
    /// The claim log of campaign directory `dir`.
    pub fn in_dir(dir: &Path) -> Self {
        ClaimLog { path: dir.join(CLAIMS_FILE) }
    }

    /// Loads every parseable claim record.
    ///
    /// Claims are advisory — losing one costs at most a duplicate,
    /// bitwise-identical trial run — so unparseable lines (a torn tail
    /// from a SIGKILLed writer, or a fragment another writer healed
    /// into an interior line) are skipped with a warning naming the
    /// line number, never a hard error.
    ///
    /// # Errors
    ///
    /// Returns a message only for I/O failures.
    pub fn load(&self) -> Result<Vec<ClaimRecord>, String> {
        let mut records = Vec::new();
        JsonlTailReader::new(self.path.clone(), "claims.read").refresh(|v| {
            records.push(ClaimRecord::from_value(&v).map_err(FoldError::Skip)?);
            Ok(())
        })?;
        Ok(records)
    }

    /// Appends one record and fsyncs it — the durability the re-read
    /// arbitration step relies on. If the log does not end in a
    /// newline (a writer died mid-append), a newline is written first
    /// so the torn fragment becomes its own skippable line instead of
    /// merging with this record. The whole open-heal-append-fsync
    /// step runs under the [`crate::io`] retry policy — it is
    /// idempotent at line granularity (a short-written fragment gets
    /// healed into its own skippable line by the retry).
    ///
    /// # Errors
    ///
    /// Returns a message on I/O failures.
    pub fn append(&self, record: &ClaimRecord) -> Result<(), String> {
        let line = json::render(&record.to_value());
        io::with_retry("claims.append", || {
            let mut file = io::open_append("claims.append", &self.path)?;
            append_jsonl_line("claims.append", &mut file, &line)
        })
        .map_err(|e| format!("append {}: {e}", self.path.display()))
    }
}

/// The one shared-log durability protocol, used for `claims.jsonl`
/// and shared-mode `trials.jsonl` alike: if the log does not end in a
/// newline (a writer died mid-append), write one first so the torn
/// fragment becomes its own skippable line instead of merging with
/// this record; then append the record as a **single** `O_APPEND`
/// write (so concurrent processes interleave line-atomically) and
/// fsync it (the durability the re-read arbitration and crash-resume
/// guarantees rest on). `file` must be open in append+read mode.
/// `tag` names the logical operation to the [`crate::io`] chaos
/// injector and retry counters (`claims.append`, `trials.append`).
pub(crate) fn append_jsonl_line(
    tag: &'static str,
    file: &mut std::fs::File,
    json_line: &str,
) -> std::io::Result<()> {
    let mut buf = String::with_capacity(json_line.len() + 2);
    if !ends_with_newline(file)? {
        buf.push('\n');
    }
    buf.push_str(json_line);
    buf.push('\n');
    io::write_all(tag, file, buf.as_bytes())?;
    io::sync_data(tag, file)
}

/// Whether `file` is empty or its last byte is `\n` (read via a seek
/// that does not disturb the `O_APPEND` write position — appends
/// ignore the seek cursor).
pub(crate) fn ends_with_newline(file: &mut std::fs::File) -> std::io::Result<bool> {
    let len = file.metadata()?.len();
    if len == 0 {
        return Ok(true);
    }
    file.seek(SeekFrom::Start(len - 1))?;
    let mut byte = [0u8; 1];
    file.read_exact(&mut byte)?;
    Ok(byte[0] == b'\n')
}

/// Options of one shared-mode worker process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoordConfig {
    /// This worker's id, as recorded in claim records. Must be unique
    /// per process instance (reusing a live worker's id makes the two
    /// fight over leases; results stay correct, CPU is wasted).
    pub worker_id: String,
    /// Lease duration in milliseconds. A claim not renewed within this
    /// window counts as stale and may be reaped by any worker. Must
    /// comfortably exceed the heartbeat cadence (`lease_ms / 3`);
    /// trials longer than the lease are covered by renewals.
    pub lease_ms: u64,
    /// How long a worker sleeps between queue polls when every
    /// incomplete trial is validly claimed by someone else.
    pub poll_ms: u64,
}

impl Default for CoordConfig {
    fn default() -> Self {
        CoordConfig { worker_id: default_worker_id(), lease_ms: 30_000, poll_ms: 500 }
    }
}

impl CoordConfig {
    /// Validates user-facing knobs — what the CLI/config layer calls
    /// before constructing a [`Coordinator`]. Rejects leases shorter
    /// than [`MIN_LEASE_MS`] (too short for the `lease_ms / 3`
    /// heartbeat cadence: the worker would self-reap — see the
    /// constant's docs) and empty worker ids.
    ///
    /// Library tests that deliberately build pathological configs
    /// (e.g. a 1 ms lease to simulate a crashed worker) construct
    /// the struct directly and skip this.
    ///
    /// # Errors
    ///
    /// Returns a [`CoordConfigError`] naming the offending knob.
    pub fn validate(&self) -> Result<(), CoordConfigError> {
        if self.lease_ms < MIN_LEASE_MS {
            return Err(CoordConfigError {
                message: format!(
                    "--lease-ms {} is below the minimum {MIN_LEASE_MS}: the heartbeat renews \
                     at lease/3 cadence on a 25 ms tick, so shorter leases expire before \
                     their own renewals land and the worker pathologically self-reaps",
                    self.lease_ms
                ),
            });
        }
        if self.worker_id.is_empty() {
            return Err(CoordConfigError {
                message: "--worker-id must not be empty (claim records need an owner)".into(),
            });
        }
        Ok(())
    }
}

/// A worker id unique per process instance: pid plus startup clock, so
/// a SIGKILLed worker's replacement (same pid space, same host) never
/// collides with the corpse's claims.
pub fn default_worker_id() -> String {
    format!("w{}-{:x}", std::process::id(), now_ms() & 0xFFFF_FFFF)
}

struct CoordShared {
    log: ClaimLog,
    worker_id: String,
    lease_ms: u64,
    /// Trials this process currently has in flight, with the
    /// generation each was won at — the heartbeat renewal set.
    active: Mutex<HashMap<usize, u64>>,
}

/// The per-process coordination handle: claim acquisition for worker
/// threads plus the background heartbeat that keeps this process's
/// leases alive. Dropping the coordinator stops the heartbeat (any
/// leases still held then simply expire).
pub struct Coordinator {
    shared: Arc<CoordShared>,
    cfg: CoordConfig,
    /// The process-wide incremental view of the claim log. Locking it
    /// also serializes claim attempts across this process's worker
    /// threads so they never race each other for the same trial
    /// (cross-process races are settled by log arbitration).
    reader: Mutex<ClaimReader>,
    stop: Arc<AtomicBool>,
    heartbeat: Option<std::thread::JoinHandle<()>>,
}

impl Coordinator {
    /// Creates the coordination handle for campaign directory `dir`
    /// and starts the heartbeat thread.
    pub fn new(dir: &Path, cfg: CoordConfig) -> Self {
        let shared = Arc::new(CoordShared {
            log: ClaimLog::in_dir(dir),
            worker_id: cfg.worker_id.clone(),
            lease_ms: cfg.lease_ms,
            active: Mutex::new(HashMap::new()),
        });
        let stop = Arc::new(AtomicBool::new(false));
        let heartbeat = {
            let shared = Arc::clone(&shared);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || heartbeat_loop(&shared, &stop))
        };
        Coordinator {
            shared,
            cfg,
            reader: Mutex::new(ClaimReader::new(dir)),
            stop,
            heartbeat: Some(heartbeat),
        }
    }

    /// This worker's id.
    pub fn worker_id(&self) -> &str {
        &self.cfg.worker_id
    }

    /// Tries to acquire the lease on `trial`: append + fsync + re-read
    /// arbitration. Returns `Ok(true)` when this worker now owns the
    /// trial (it is added to the heartbeat set; call
    /// [`Coordinator::complete`] when done).
    ///
    /// # Errors
    ///
    /// Returns a message on claim-log I/O failures.
    pub fn try_claim(&self, trial: usize) -> Result<bool, String> {
        Ok(self.claim_next(&[trial], 0)?.is_some())
    }

    /// Claims the first acquirable trial out of `pending`, scanning
    /// from `offset` (callers stagger offsets to spread workers over
    /// the queue). The claim log is loaded and arbitrated **once per
    /// call**, not once per candidate — candidates that are validly
    /// claimed by others are skipped against that snapshot, and only
    /// an actual acquisition attempt costs an append + one re-read
    /// (which also refreshes the snapshot for the remaining
    /// candidates if the attempt loses its race).
    ///
    /// # Errors
    ///
    /// Returns a message on claim-log I/O failures.
    pub fn claim_next(&self, pending: &[usize], offset: usize) -> Result<Option<usize>, String> {
        if pending.is_empty() {
            return Ok(None);
        }
        // Poison recovery, not `.expect`: a worker thread that
        // panicked mid-claim must not cascade into killing this
        // process's other claim holders (the reader re-reads the log
        // tail idempotently; the active set holds independent
        // entries — both stay consistent under an interrupted
        // update).
        let mut reader = lock_recover(&self.reader);
        reader.refresh()?;
        for k in 0..pending.len() {
            let trial = pending[(k + offset) % pending.len()];
            if lock_recover(&self.shared.active).contains_key(&trial) {
                // Another thread of this process is already running it.
                continue;
            }
            let now = now_ms();
            let generation = match reader.state.get(&trial) {
                None => 0,
                Some(w) if w.expired(now) => {
                    frlfi_obs::count("coord.reap", 1);
                    frlfi_obs::info!(
                        "reaping stale lease on trial {trial} (worker {} went quiet)",
                        w.worker
                    );
                    w.generation + 1
                }
                Some(_) => continue,
            };
            frlfi_obs::count("coord.claim.attempt", 1);
            self.shared.log.append(&ClaimRecord {
                trial,
                generation,
                worker: self.cfg.worker_id.clone(),
                deadline_ms: now + self.cfg.lease_ms,
                ts_ms: now,
            })?;
            // Re-read arbitration (tail only): did our record win its
            // generation? The refresh also folds any concurrent
            // appends, keeping the snapshot fresh for the remaining
            // candidates if this attempt lost its race.
            reader.refresh()?;
            let won = matches!(
                reader.state.get(&trial),
                Some(w) if w.generation == generation && w.worker == self.cfg.worker_id
            );
            if won {
                frlfi_obs::count("coord.claim.won", 1);
                lock_recover(&self.shared.active).insert(trial, generation);
                return Ok(Some(trial));
            }
            // Arbitration loss: another process's append beat ours.
            frlfi_obs::count("coord.claim.lost", 1);
        }
        Ok(None)
    }

    /// Marks `trial` finished: drops it from the heartbeat set (its
    /// lease simply expires; completion itself is what the trial log
    /// records).
    pub fn complete(&self, trial: usize) {
        lock_recover(&self.shared.active).remove(&trial);
    }
}

impl Drop for Coordinator {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.heartbeat.take() {
            let _ = h.join();
        }
    }
}

/// Renews every in-flight lease at `lease_ms / 3` cadence until told
/// to stop. Renewal failures are non-fatal: a missed heartbeat at
/// worst lets another worker duplicate a trial bitwise-identically.
fn heartbeat_loop(shared: &CoordShared, stop: &AtomicBool) {
    let interval = (shared.lease_ms / 3).max(50);
    let tick = std::time::Duration::from_millis(25);
    let mut elapsed = 0u64;
    while !stop.load(Ordering::Relaxed) {
        std::thread::sleep(tick);
        elapsed += tick.as_millis() as u64;
        if elapsed < interval {
            continue;
        }
        elapsed = 0;
        let renewals: Vec<(usize, u64)> = {
            let active = lock_recover(&shared.active);
            active.iter().map(|(&t, &g)| (t, g)).collect()
        };
        let now = now_ms();
        for (trial, generation) in renewals {
            frlfi_obs::count("coord.heartbeat", 1);
            let _ = shared.log.append(&ClaimRecord {
                trial,
                generation,
                worker: shared.worker_id.clone(),
                deadline_ms: now + shared.lease_ms,
                ts_ms: now,
            });
        }
        // The heartbeat thread never runs trials, so it drains its own
        // counters each renewal round instead of relying on trial-end
        // flushes.
        frlfi_obs::flush();
    }
}

/// One worker's live footprint in a campaign directory, as seen by
/// [`status`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerStatus {
    /// Worker id.
    pub worker: String,
    /// Incomplete trials this worker holds an unexpired lease on.
    pub active_trials: Vec<usize>,
    /// Latest lease deadline across those trials (ms since epoch).
    pub latest_deadline_ms: u64,
    /// When this worker's first claim record was issued (ms since
    /// epoch; 0 when every record predates the `ts_ms` field) — the
    /// basis of the status table's per-worker elapsed column.
    pub first_seen_ms: u64,
    /// When this worker's most recent record (claim or heartbeat
    /// renewal) was issued — the basis of the last-heartbeat-age
    /// column. 0 when unknown.
    pub last_seen_ms: u64,
}

/// Counts of one task kind in a study campaign, bucketed by state.
///
/// Buckets are disjoint: `done` wins over everything, an unexpired
/// claim wins over quarantine, and `pending` is the remainder —
/// `pending + claimed + quarantined + done` covers the kind's whole
/// task count.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KindCounts {
    /// Not done, unclaimed, unquarantined — free for any worker.
    pub pending: usize,
    /// Held under an unexpired lease.
    pub claimed: usize,
    /// Durably complete (a trial record / an artifact record).
    pub done: usize,
    /// Carrying an advisory quarantine record and still incomplete.
    pub quarantined: usize,
}

/// The per-task-kind breakdown of a study (task-DAG) campaign: train
/// tasks publish model artifacts, eval trials gate on them. `None` on
/// classic flat-sweep campaigns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskKinds {
    /// Model-training tasks (claim ids `0..n_models`).
    pub train: KindCounts,
    /// Eval trials (claim ids `n_models + flat`).
    pub eval: KindCounts,
    /// Unsatisfied dependencies blocking every pending eval task:
    /// models whose artifact record has not landed, as
    /// `model-<i> (<label>)`. Empty once the artifact gate is open.
    pub unsatisfied: Vec<String>,
}

/// A point-in-time snapshot of a campaign directory's coordination
/// state: progress plus who is working on what.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignStatus {
    /// Scenario name.
    pub name: String,
    /// Scenario scale, rendered (`Smoke`/`Bench`/`Full`).
    pub scale: String,
    /// Cells in the campaign grid.
    pub cells: usize,
    /// Repeats per cell.
    pub repeats: usize,
    /// Trials persisted in `trials.jsonl`.
    pub completed_trials: usize,
    /// Total `(cell × repeat)` trials.
    pub total_trials: usize,
    /// Workers holding unexpired leases on incomplete trials.
    pub workers: Vec<WorkerStatus>,
    /// Incomplete trials whose lease has expired — work a crashed
    /// worker left behind, re-claimable by anyone.
    pub stale_claims: usize,
    /// Incomplete trials with a `quarantine.jsonl` record — work some
    /// worker exhausted its I/O retries on. Advisory: a healthy
    /// worker re-runs them bitwise-identically (completed trials with
    /// stale quarantine records are not counted).
    pub quarantined: usize,
    /// Whether `summary.txt` has been written.
    pub summary_written: bool,
    /// Study campaigns only: the per-task-kind breakdown (train vs
    /// eval) plus the dependencies blocking eval tasks.
    pub tasks: Option<TaskKinds>,
}

impl CampaignStatus {
    /// Completion as a percentage.
    pub fn percent(&self) -> f64 {
        if self.total_trials == 0 {
            100.0
        } else {
            100.0 * self.completed_trials as f64 / self.total_trials as f64
        }
    }
}

/// Reads the live coordination state of campaign directory `dir` (the
/// `campaign status` command).
///
/// # Errors
///
/// Returns a message if the directory is not a campaign directory or
/// its manifest/trial log is unreadable.
pub fn status(dir: &Path) -> Result<CampaignStatus, String> {
    let scenario = crate::runner::load_scenario(&dir.join("campaign.toml"))?;
    let campaign = scenario.expand().map_err(|e| e.to_string())?;
    let repeats = campaign.repeats;
    let total = campaign.total_trials();
    let done = crate::runner::completed_trials(&campaign, dir)?;
    let completed = done.iter().filter(|d| d.is_some()).count();

    // Study campaigns put *tasks* in the claim log, not bare trials:
    // ids below `n_models` are train tasks — done once their artifact
    // record lands — and eval trials sit at `n_models + flat`.
    // `n_models` is 0 for classic campaigns, so nothing shifts there.
    let n_models = campaign.n_models();
    let published: Vec<bool> = if n_models > 0 {
        let mut tracker = crate::artifacts::ArtifactTracker::new(dir, n_models);
        tracker.refresh()?;
        (0..n_models).map(|m| tracker.digest(m).is_some()).collect()
    } else {
        Vec::new()
    };

    let now = now_ms();
    let records = ClaimLog::in_dir(dir).load()?;
    // Per-worker first/last record issue times over the *whole* log —
    // completed trials' claims and heartbeat renewals count toward a
    // worker's elapsed time and heartbeat age.
    let mut seen: HashMap<&str, (u64, u64)> = HashMap::new();
    for r in &records {
        if r.ts_ms == 0 {
            continue; // record predates the ts_ms field
        }
        let (first, last) = seen.entry(r.worker.as_str()).or_insert((u64::MAX, 0));
        *first = (*first).min(r.ts_ms);
        *last = (*last).max(r.ts_ms);
    }
    let mut workers: HashMap<String, WorkerStatus> = HashMap::new();
    let mut stale = 0usize;
    let mut train_claimed = 0usize;
    let mut eval_claimed = 0usize;
    for (&task, claim) in arbitrate(&records).iter() {
        let is_train = task < n_models;
        if is_train {
            if published[task] {
                continue; // artifact landed — the claim is moot
            }
        } else {
            let trial = task - n_models;
            if trial >= total || done[trial].is_some() {
                continue; // finished or foreign — the claim is moot
            }
        }
        if claim.expired(now) {
            stale += 1;
        } else {
            if is_train {
                train_claimed += 1;
            } else {
                eval_claimed += 1;
            }
            let w = workers.entry(claim.worker.clone()).or_insert_with(|| {
                let (first, last) = seen.get(claim.worker.as_str()).copied().unwrap_or((0, 0));
                WorkerStatus {
                    worker: claim.worker.clone(),
                    active_trials: Vec::new(),
                    latest_deadline_ms: 0,
                    first_seen_ms: if first == u64::MAX { 0 } else { first },
                    last_seen_ms: last,
                }
            });
            w.active_trials.push(task);
            w.latest_deadline_ms = w.latest_deadline_ms.max(claim.deadline_ms);
        }
    }
    let mut workers: Vec<WorkerStatus> = workers.into_values().collect();
    for w in &mut workers {
        w.active_trials.sort_unstable();
    }
    workers.sort_by(|a, b| a.worker.cmp(&b.worker));

    // Quarantine records are advisory — only those naming a task
    // that is still incomplete count (a completed trial record / a
    // published artifact overrides).
    let qrecords = crate::quarantine::load(dir)?;
    let eval_quarantined = {
        let mut trials: Vec<usize> = qrecords
            .iter()
            .filter(|q| q.kind == crate::quarantine::QuarantineKind::Trial)
            .map(|q| q.trial)
            .filter(|&t| t < total && done[t].is_none())
            .collect();
        trials.sort_unstable();
        trials.dedup();
        trials.len()
    };
    let train_quarantined = {
        let mut models: Vec<usize> = qrecords
            .iter()
            .filter(|q| q.kind == crate::quarantine::QuarantineKind::Train)
            .map(|q| q.trial)
            .filter(|&m| m < n_models && !published[m])
            .collect();
        models.sort_unstable();
        models.dedup();
        models.len()
    };

    let tasks = campaign.study().map(|g| {
        let train_done = published.iter().filter(|&&p| p).count();
        let eval_done = completed;
        TaskKinds {
            train: KindCounts {
                pending: n_models.saturating_sub(train_done + train_claimed + train_quarantined),
                claimed: train_claimed,
                done: train_done,
                quarantined: train_quarantined,
            },
            eval: KindCounts {
                pending: total.saturating_sub(eval_done + eval_claimed + eval_quarantined),
                claimed: eval_claimed,
                done: eval_done,
                quarantined: eval_quarantined,
            },
            unsatisfied: (0..n_models)
                .filter(|&m| !published[m])
                .map(|m| format!("model-{m} ({})", g.models()[m].label()))
                .collect(),
        }
    });

    Ok(CampaignStatus {
        name: scenario.name.clone(),
        scale: format!("{:?}", scenario.scale),
        cells: campaign.trials.len(),
        repeats,
        completed_trials: completed,
        total_trials: total,
        workers,
        stale_claims: stale,
        quarantined: eval_quarantined + train_quarantined,
        summary_written: dir.join("summary.txt").exists(),
        tasks,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::sync::atomic::AtomicUsize;

    fn temp_dir(tag: &str) -> PathBuf {
        static N: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "frlfi-coord-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create temp dir");
        dir
    }

    fn rec(trial: usize, generation: u64, worker: &str, deadline_ms: u64) -> ClaimRecord {
        ClaimRecord { trial, generation, worker: worker.into(), deadline_ms, ts_ms: 0 }
    }

    #[test]
    fn first_record_wins_within_a_generation() {
        let w = arbitrate(&[rec(3, 0, "a", 100), rec(3, 0, "b", 999)]);
        assert_eq!(w[&3].worker, "a");
        assert_eq!(w[&3].deadline_ms, 100);
    }

    #[test]
    fn higher_generation_supersedes() {
        let w = arbitrate(&[rec(3, 0, "a", 100), rec(3, 1, "b", 200), rec(3, 0, "a", 999)]);
        assert_eq!(w[&3].worker, "b");
        assert_eq!(w[&3].generation, 1);
        // The stale generation-0 renewal cannot resurrect `a`.
        assert_eq!(w[&3].deadline_ms, 200);
    }

    #[test]
    fn renewals_extend_the_winners_deadline() {
        let w = arbitrate(&[rec(5, 0, "a", 100), rec(5, 0, "a", 300), rec(5, 0, "b", 400)]);
        assert_eq!(w[&5].worker, "a");
        assert_eq!(w[&5].deadline_ms, 300, "b's lost race must not extend a's lease");
    }

    #[test]
    fn claim_log_round_trips_and_skips_garbage() {
        let dir = temp_dir("log");
        let log = ClaimLog::in_dir(&dir);
        assert_eq!(log.load().expect("empty"), Vec::new());
        log.append(&rec(1, 0, "a", 10)).expect("append");
        log.append(&rec(2, 1, "b", 20)).expect("append");
        // A torn tail from a killed writer...
        let mut f =
            std::fs::OpenOptions::new().append(true).open(dir.join(CLAIMS_FILE)).expect("open");
        write!(f, "{{\"trial\":9,\"ge").expect("torn tail");
        drop(f);
        // ...is skipped on load, and healed into its own line by the
        // next append instead of merging with it.
        assert_eq!(log.load().expect("load"), vec![rec(1, 0, "a", 10), rec(2, 1, "b", 20)]);
        log.append(&rec(3, 0, "c", 30)).expect("append heals");
        assert_eq!(
            log.load().expect("load"),
            vec![rec(1, 0, "a", 10), rec(2, 1, "b", 20), rec(3, 0, "c", 30)]
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn coordinator_claims_arbitrates_and_reaps() {
        let dir = temp_dir("coordinator");
        let mk = |id: &str, lease_ms: u64| {
            Coordinator::new(
                &dir,
                CoordConfig { worker_id: id.into(), lease_ms, ..CoordConfig::default() },
            )
        };
        let a = mk("a", 60_000);
        let b = mk("b", 60_000);
        assert!(a.try_claim(0).expect("claim"), "fresh trial must be claimable");
        assert!(!b.try_claim(0).expect("claim"), "live lease must repel other workers");
        assert!(!a.try_claim(0).expect("claim"), "own in-flight trial is not re-claimable");
        assert!(b.try_claim(1).expect("claim"), "other trials stay claimable");

        // A crashed worker: lease expires without renewal, any worker
        // reaps at the next generation.
        let c = mk("c", 1);
        assert!(c.try_claim(2).expect("claim"));
        drop(c); // heartbeat stops; the 1 ms lease is long gone
        std::thread::sleep(std::time::Duration::from_millis(5));
        assert!(b.try_claim(2).expect("reap"), "expired lease must be re-claimable");
        let state = arbitrate(&ClaimLog::in_dir(&dir).load().expect("load"));
        assert_eq!(state[&2].generation, 1, "reaping bumps the generation");
        assert_eq!(state[&2].worker, "b");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn claim_next_scans_past_live_leases_from_one_snapshot() {
        let dir = temp_dir("claim-next");
        let mk = |id: &str| {
            Coordinator::new(
                &dir,
                CoordConfig { worker_id: id.into(), lease_ms: 60_000, ..CoordConfig::default() },
            )
        };
        let a = mk("a");
        let b = mk("b");
        assert_eq!(a.claim_next(&[0, 1, 2], 0).expect("claim"), Some(0));
        // b's scan starts at 0 but skips a's live lease and wins 1.
        assert_eq!(b.claim_next(&[0, 1, 2], 0).expect("claim"), Some(1));
        // a skips its own in-flight trial and b's lease; offset wraps.
        assert_eq!(a.claim_next(&[0, 1, 2], 2).expect("claim"), Some(2));
        assert_eq!(b.claim_next(&[0, 1, 2], 0).expect("claim"), None, "queue exhausted");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn config_validation_rejects_pathological_leases() {
        let ok = CoordConfig { worker_id: "w".into(), lease_ms: MIN_LEASE_MS, poll_ms: 50 };
        assert!(ok.validate().is_ok());
        let short = CoordConfig { lease_ms: MIN_LEASE_MS - 1, ..ok.clone() };
        let err = short.validate().expect_err("short lease");
        assert!(err.to_string().contains("self-reap"), "{err}");
        assert!(err.to_string().contains("--lease-ms"), "{err}");
        let anon = CoordConfig { worker_id: String::new(), ..ok };
        assert!(anon.validate().is_err(), "empty worker id");
    }

    #[test]
    fn heartbeat_renews_in_flight_leases() {
        let dir = temp_dir("heartbeat");
        let coordinator = Coordinator::new(
            &dir,
            CoordConfig { worker_id: "hb".into(), lease_ms: 180, ..CoordConfig::default() },
        );
        assert!(coordinator.try_claim(0).expect("claim"));
        let first = arbitrate(&ClaimLog::in_dir(&dir).load().expect("load"))[&0].deadline_ms;
        // Well past the original 180 ms lease, renewals (every ~60 ms)
        // must have pushed the deadline forward.
        std::thread::sleep(std::time::Duration::from_millis(400));
        let state = arbitrate(&ClaimLog::in_dir(&dir).load().expect("load"));
        assert!(!state[&0].expired(now_ms()), "heartbeat must keep the lease alive");
        assert!(state[&0].deadline_ms > first, "renewals must extend the deadline");
        // Completion drops the trial from the renewal set.
        coordinator.complete(0);
        let last = arbitrate(&ClaimLog::in_dir(&dir).load().expect("load"))[&0].deadline_ms;
        std::thread::sleep(std::time::Duration::from_millis(200));
        let state = arbitrate(&ClaimLog::in_dir(&dir).load().expect("load"));
        assert_eq!(state[&0].deadline_ms, last, "completed trials are not renewed");
        std::fs::remove_dir_all(&dir).ok();
    }
}
