//! Observability guarantees, pinned end to end:
//!
//! * enabling the recorder changes **nothing**: `summary.txt` and the
//!   per-trial `trials.jsonl` stay byte-identical to the disabled run;
//! * a multi-worker `--obs` campaign leaves one parseable
//!   `obs/worker-<id>.jsonl` stream per worker, and
//!   `campaign profile` folds them into a non-empty per-phase table
//!   that survives `--check`'s strict schema validation;
//! * the obs loader follows the repo's torn-tail discipline: a killed
//!   writer's unterminated fragment is dropped, interior garbage is
//!   skipped leniently (and named under `--check`);
//! * `campaign status` reports per-worker elapsed time and heartbeat
//!   age from the claim log's record timestamps.

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use frlfi::Scale;
use frlfi_campaign::io::chaos::{self, ChaosSpec};
use frlfi_campaign::{fmt, perf, profile, runner, top, trace, RunnerConfig, Scenario, SystemKind};
use serde::Value;

/// The recorder is process-global: tests that enable it (or assert on
/// its absence) serialize through this lock so one test's events can
/// never land in another's stream.
static OBS_LOCK: Mutex<()> = Mutex::new(());

fn cli() -> &'static str {
    env!("CARGO_BIN_EXE_campaign")
}

fn temp_dir(tag: &str) -> PathBuf {
    static N: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "frlfi-obs-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The multiproc suite's cheap grid campaign: 3 cells × 4 repeats.
fn scenario(name: &str) -> Scenario {
    let mut s = Scenario::new(name, SystemKind::GridWorld, Scale::Smoke);
    s.fault.bers = vec![0.0, 0.1, 0.2];
    s.fault.inject_episodes = vec![100];
    s.train.total_episodes = Some(300);
    s.repeats = Some(4);
    s
}

fn write_spec(name: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("frlfi-obs-{name}-{}.toml", std::process::id()));
    std::fs::write(&path, scenario(name).to_toml()).expect("write spec");
    path
}

fn run_cli(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(cli()).args(args).output().expect("spawn campaign CLI");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

fn spawn_cli(args: &[&str]) -> Child {
    Command::new(cli())
        .args(args)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn campaign CLI")
}

fn wait_output(child: Child, what: &str) -> String {
    let out = child.wait_with_output().expect("wait for CLI");
    let text =
        String::from_utf8_lossy(&out.stdout).into_owned() + &String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "{what} failed:\n{text}");
    text
}

fn read(dir: &Path, name: &str) -> String {
    std::fs::read_to_string(dir.join(name))
        .unwrap_or_else(|e| panic!("{name} in {}: {e}", dir.display()))
}

#[test]
fn obs_enabled_run_is_byte_identical_and_its_stream_parses_strictly() {
    let _guard = OBS_LOCK.lock().unwrap();
    let scenario = scenario("bytes");

    // Reference: recorder off, one thread (so the trial log's order is
    // deterministic and the logs compare byte-for-byte, not just the
    // summary).
    let ref_dir = temp_dir("bytes-ref");
    let cfg = RunnerConfig { threads: 1, ..RunnerConfig::default() };
    runner::run(&scenario, &ref_dir, &cfg).expect("reference run").stats.expect("complete");

    let dir = temp_dir("bytes-obs");
    let out =
        runner::run(&scenario, &dir, &RunnerConfig { obs: true, ..cfg.clone() }).expect("obs run");
    assert!(out.complete());

    assert_eq!(
        read(&dir, "summary.txt"),
        read(&ref_dir, "summary.txt"),
        "enabling obs must not change a byte of summary.txt"
    );
    assert_eq!(
        read(&dir, "trials.jsonl"),
        read(&ref_dir, "trials.jsonl"),
        "enabling obs must not change a byte of the trial log"
    );
    assert!(!ref_dir.join(profile::OBS_DIR).exists(), "disabled run must not write obs/");

    // The stream parses under strict validation and attributes the
    // campaign's work: 12 trial spans partitioned into train/eval,
    // io timers from the per-trial commits, kernel dispatch counters.
    let p = profile::load_dir(&dir, profile::CheckMode::Strict).expect("strict load");
    assert_eq!(p.workers.len(), 1, "exclusive run writes one stream");
    let w = &p.workers[0];
    assert!(w.worker.starts_with('x'), "exclusive worker id is x<pid>: {}", w.worker);
    assert_eq!(w.trials(), 12);
    assert_eq!(w.spans["train"].0, 12);
    assert_eq!(w.spans["eval"].0, 12);
    assert!(w.timers["io"].0 >= 12, "every commit times its append");
    assert!(w.counters["nn.dispatch.reference"] > 0, "grid eval dispatches reference kernels");
    assert!(w.trial_us() >= w.spans["train"].1, "trial spans cover training");

    std::fs::remove_dir_all(&ref_dir).ok();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn two_shared_workers_stream_obs_and_profile_renders_their_phases() {
    let _guard = OBS_LOCK.lock().unwrap();
    let spec = write_spec("mp-obs");
    let spec_s = spec.to_str().expect("utf8");
    let dir = temp_dir("mp-obs");
    let dir_s = dir.to_str().expect("utf8");

    // Reference bytes from a plain exclusive run.
    let ref_dir = temp_dir("mp-obs-ref");
    runner::run(&scenario("mp-obs"), &ref_dir, &RunnerConfig { threads: 1, ..Default::default() })
        .expect("reference run");

    // Two worker processes share the campaign, both with the recorder
    // on — one through the flag, one through the environment knob.
    let first = spawn_cli(&[
        "run",
        spec_s,
        "--out",
        dir_s,
        "--shared",
        "--threads",
        "1",
        "--worker-id",
        "w1",
        "--obs",
    ]);
    let start = Instant::now();
    while !dir.join("campaign.toml").exists() {
        assert!(start.elapsed() < Duration::from_secs(30), "campaign manifest never appeared");
        std::thread::sleep(Duration::from_millis(10));
    }
    let second = Command::new(cli())
        .args(["worker", dir_s, "--threads", "1", "--worker-id", "w2"])
        .env("CAMPAIGN_OBS", "1")
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn worker w2");
    wait_output(first, "shared run w1");
    wait_output(second, "worker w2");

    assert_eq!(read(&dir, "summary.txt"), read(&ref_dir, "summary.txt"));
    for worker in ["w1", "w2"] {
        assert!(
            dir.join(profile::OBS_DIR).join(format!("worker-{worker}.jsonl")).exists(),
            "{worker} must have streamed telemetry"
        );
    }

    // `campaign profile` folds both streams: a row per worker, the
    // campaign's 12 trials attributed, coordination counters visible.
    let (ok, out, _) = run_cli(&["profile", dir_s]);
    assert!(ok, "{out}");
    assert!(out.contains("w1") && out.contains("w2"), "one profile row per worker:\n{out}");
    assert!(out.contains("trial/s"), "{out}");
    assert!(out.contains("coord.claim.won"), "claim counters must surface:\n{out}");
    assert!(out.contains("campaign complete"), "{out}");
    let p = profile::load_dir(&dir, profile::CheckMode::Strict).expect("strict load");
    assert_eq!(p.trials(), 12, "every trial span lands in exactly one stream");

    // Strict validation passes on real streams.
    let (ok, out, _) = run_cli(&["profile", dir_s, "--check"]);
    assert!(ok, "{out}");
    assert!(out.contains("check ok:"), "{out}");

    // `status` picks the telemetry up as an observed rate.
    let (ok, st, _) = run_cli(&["status", dir_s]);
    assert!(ok, "{st}");
    assert!(st.contains("observed:"), "status should surface the obs-derived rate:\n{st}");

    std::fs::remove_dir_all(&ref_dir).ok();
    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_file(&spec).ok();
}

#[test]
fn profile_tolerates_torn_tails_and_check_names_interior_garbage() {
    let _guard = OBS_LOCK.lock().unwrap();
    let dir = temp_dir("torn");
    let scenario = scenario("torn");
    runner::run(
        &scenario,
        &dir,
        &RunnerConfig { threads: 1, obs: true, ..RunnerConfig::default() },
    )
    .expect("obs run");
    let dir_s = dir.to_str().expect("utf8");

    // A SIGKILLed writer's torn tail never fails validation.
    let stream = std::fs::read_dir(dir.join(profile::OBS_DIR))
        .expect("obs dir")
        .next()
        .expect("one stream")
        .expect("entry")
        .path();
    let intact = std::fs::read_to_string(&stream).expect("stream");
    std::fs::write(&stream, format!("{intact}{{\"v\":1,\"kind\":\"sp")).expect("append tail");
    let (ok, out, _) = run_cli(&["profile", dir_s, "--check"]);
    assert!(ok, "torn tail must pass --check:\n{out}");
    assert!(out.contains("1 torn tail(s)"), "{out}");

    // Interior garbage: lenient profile skips it with a warning,
    // --check fails naming the line, --quiet silences the warning.
    let mut lines: Vec<&str> = intact.lines().collect();
    let n_events = lines.len();
    lines.insert(2, "{\"v\":1,\"kind\":\"mystery\",\"ts_ms\":1}");
    std::fs::write(&stream, lines.join("\n") + "\n").expect("mangle");
    let (ok, out, err) = run_cli(&["profile", dir_s]);
    assert!(ok, "lenient profile must survive garbage:\n{out}\n{err}");
    assert!(err.contains("line 3"), "warning names the line:\n{err}");
    let p = profile::load_dir(&dir, profile::CheckMode::Lenient).expect("lenient load");
    assert_eq!(p.events() as usize, n_events, "only the garbage line is dropped");
    let (ok, _, err) = run_cli(&["profile", dir_s, "--check"]);
    assert!(!ok, "--check must fail on interior garbage");
    assert!(err.contains("line 3"), "{err}");
    let (ok, _, err) = run_cli(&["profile", dir_s, "--quiet"]);
    assert!(ok);
    assert!(!err.contains("line 3"), "--quiet must silence the skip warning:\n{err}");

    // A campaign that never streamed telemetry profiles to an empty
    // report leniently but refuses --check (CI would be asserting on
    // nothing).
    let bare = temp_dir("bare");
    runner::run(&scenario, &bare, &RunnerConfig::default()).expect("plain run");
    let bare_s = bare.to_str().expect("utf8");
    let (ok, out, _) = run_cli(&["profile", bare_s]);
    assert!(ok, "{out}");
    assert!(out.contains("no trial spans yet"), "{out}");
    let (ok, _, err) = run_cli(&["profile", bare_s, "--check"]);
    assert!(!ok, "--check on a stream-less campaign must fail");
    assert!(err.contains("no obs streams"), "{err}");

    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&bare).ok();
}

#[test]
fn status_reports_worker_elapsed_time_and_heartbeat_age() {
    let spec = write_spec("hb");
    let dir = temp_dir("hb");
    let dir_s = dir.to_str().expect("utf8");

    // Open the campaign and stop early so incomplete trials remain.
    let (ok, out, err) =
        run_cli(&["run", spec.to_str().expect("utf8"), "--out", dir_s, "--max-trials", "2"]);
    assert!(ok, "{out}\n{err}");

    // Hand-craft claim records the way a live worker would have
    // written them: an issue timestamp 90 s back, a renewal 2 s back,
    // and an unexpired lease so the worker counts as active.
    let now = frlfi_campaign::coord::now_ms();
    let claims = format!(
        "{{\"trial\":2,\"gen\":1,\"worker\":\"w-live\",\"deadline_ms\":{},\"ts_ms\":{}}}\n\
         {{\"trial\":2,\"gen\":1,\"worker\":\"w-live\",\"deadline_ms\":{},\"ts_ms\":{}}}\n\
         {{\"trial\":3,\"gen\":1,\"worker\":\"w-old\",\"deadline_ms\":{}}}\n",
        now + 60_000,
        now - 90_000,
        now + 60_000,
        now - 2_000,
        now + 60_000,
    );
    std::fs::write(dir.join("claims.jsonl"), claims).expect("write claims");

    let (ok, st, _) = run_cli(&["status", dir_s]);
    assert!(ok, "{st}");
    assert!(st.contains("w-live"), "{st}");
    assert!(st.contains("up 90."), "elapsed since first claim:\n{st}");
    assert!(st.contains("last heartbeat 2."), "age of latest renewal:\n{st}");
    // Records that predate the ts_ms field degrade to `?`, not 1970.
    assert!(st.contains("up ?") && st.contains("last heartbeat ? ago"), "{st}");

    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_file(&spec).ok();
}

/// Chaos injection is process-global too; the one obs test that arms
/// it already holds `OBS_LOCK`, and this guard disarms on drop so a
/// failing assertion cannot leak faults into the next test.
struct Armed;

impl Armed {
    fn arm(spec: ChaosSpec) -> Armed {
        chaos::arm(spec);
        Armed
    }
}

impl Drop for Armed {
    fn drop(&mut self) {
        chaos::disarm();
    }
}

#[test]
fn a_failing_trial_still_leaves_its_telemetry_on_disk() {
    let _guard = OBS_LOCK.lock().unwrap();

    // One cell, two repeats, every `trials.append` faulting
    // persistently: the retry budget exhausts, both trials
    // quarantine, and the run fails.
    let mut s = Scenario::new("obs-poison", SystemKind::GridWorld, Scale::Smoke);
    s.fault.bers = vec![0.1];
    s.fault.inject_episodes = vec![40];
    s.train.total_episodes = Some(60);
    s.repeats = Some(2);

    let dir = temp_dir("poison");
    let err = {
        let _armed = Armed::arm(ChaosSpec {
            seed: 7,
            tag: Some("trials.append".into()),
            persist: true,
            ..ChaosSpec::default()
        });
        runner::run(&s, &dir, &RunnerConfig { threads: 1, obs: true, ..RunnerConfig::default() })
            .expect_err("exhausted retries must fail the run")
    };
    assert!(err.contains("quarantined"), "{err}");

    // The worker gave up on both trials, but the telemetry that
    // describes the failure must already be on disk: the error paths
    // flush before quarantining, and the recorder drains on unwind.
    let p = profile::load_dir(&dir, profile::CheckMode::Strict)
        .expect("a failing run's stream still parses strictly");
    assert_eq!(p.workers.len(), 1);
    let w = &p.workers[0];
    assert_eq!(w.trials(), 2, "both poisoned trials record their spans");
    assert!(w.spans.contains_key("train") && w.spans.contains_key("eval"));
    assert_eq!(w.counters["trial.quarantined"], 2, "{:?}", w.counters);
    assert!(w.counters.keys().any(|k| k.starts_with("chaos.inject.")), "{:?}", w.counters);
    assert!(w.counters.keys().any(|k| k.starts_with("io.retry")), "{:?}", w.counters);

    std::fs::remove_dir_all(&dir).ok();
}

/// The committed v1 stream: what a pre-causal-schema worker wrote.
fn v1_fixture() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/data/obs_v1_fixture.jsonl")
}

#[test]
fn v1_fixture_mixes_with_a_v2_run_in_profile_trace_and_top() {
    let _guard = OBS_LOCK.lock().unwrap();
    let dir = temp_dir("v1mix");
    runner::run(
        &scenario("v1mix"),
        &dir,
        &RunnerConfig { threads: 1, obs: true, ..RunnerConfig::default() },
    )
    .expect("obs run");
    std::fs::copy(v1_fixture(), dir.join(profile::OBS_DIR).join("worker-v1.jsonl"))
        .expect("install fixture");
    let dir_s = dir.to_str().expect("utf8");

    // profile: both streams fold under strict validation — the
    // campaign's 12 v2 trials plus the fixture's one, nothing
    // skipped, no version warnings.
    let p = profile::load_dir(&dir, profile::CheckMode::Strict).expect("strict mixed load");
    assert_eq!(p.workers.len(), 2);
    assert_eq!(p.trials(), 13);
    assert_eq!(p.skipped_lines, 0);
    let v1 = p.workers.iter().find(|w| w.worker == "v1").expect("fixture worker row");
    assert_eq!(v1.trials(), 1);
    assert_eq!(v1.counters["nn.dispatch.reference"], 40);
    assert!(p.hist_totals()["nn.batch_size"][4] >= 8, "fixture hist folds into the totals");
    let (ok, out, err) = run_cli(&["profile", dir_s, "--check"]);
    assert!(ok, "{out}\n{err}");
    assert!(out.contains("2 stream(s)"), "{out}");
    assert!(err.is_empty(), "mixed versions must not warn:\n{err}");

    // trace: the mixed directory exports cleanly; the fixture's spans
    // place via the wall-clock fallback and keep their own process
    // track.
    let t = trace::export(&dir, &trace::TraceOptions::default()).expect("mixed trace");
    assert_eq!((t.skipped_lines, t.torn_tails), (0, 0));
    let doc = fmt::json::parse(&t.json).expect("trace JSON parses");
    let events = doc.get("traceEvents").and_then(Value::as_array).expect("traceEvents");
    let pids: std::collections::BTreeSet<i64> = events
        .iter()
        .filter(|e| e.get("ph").and_then(Value::as_str) == Some("X"))
        .filter_map(|e| e.get("pid").and_then(Value::as_int))
        .collect();
    assert_eq!(pids.len(), 2, "span tracks from both workers: {pids:?}");

    // top: the dashboard folds both streams — the fixture worker gets
    // a row and the finished campaign reads complete.
    let mut state = top::TopState::new(&dir).expect("top state");
    let frame = state.tick().expect("tick");
    assert!(frame.text.contains("v1"), "{}", frame.text);
    assert!(frame.text.contains("campaign complete"), "{}", frame.text);
    let (ok, out, err) = run_cli(&["top", dir_s, "--once"]);
    assert!(ok, "{out}\n{err}");
    assert!(out.contains("campaign complete"), "{out}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn trace_reconstructs_the_trial_tree_and_perf_gates_a_regression() {
    let _guard = OBS_LOCK.lock().unwrap();
    let dir = temp_dir("tree");
    runner::run(
        &scenario("tree"),
        &dir,
        &RunnerConfig { threads: 1, obs: true, ..RunnerConfig::default() },
    )
    .expect("obs run");
    let dir_s = dir.to_str().expect("utf8");

    // The exported tree matches the instrumented call structure:
    // every train/eval span hangs off a trial span, trial spans carry
    // their trial index, and the per-trial commit's io timer is
    // attributed to its trial.
    let t = trace::export(&dir, &trace::TraceOptions::default()).expect("trace");
    let doc = fmt::json::parse(&t.json).expect("valid trace JSON");
    let events = doc.get("traceEvents").and_then(Value::as_array).expect("traceEvents");
    let arg = |e: &Value, k: &str| e.get("args").and_then(|a| a.get(k)).and_then(Value::as_int);
    let spans: Vec<&Value> =
        events.iter().filter(|e| e.get("ph").and_then(Value::as_str) == Some("X")).collect();
    fn name_of(e: &Value) -> &str {
        e.get("name").and_then(Value::as_str).unwrap_or("")
    }
    let trial_ids: std::collections::BTreeSet<i64> =
        spans.iter().filter(|e| name_of(e) == "trial").filter_map(|e| arg(e, "id")).collect();
    assert_eq!(trial_ids.len(), 12, "one trial span per trial");
    for span in &spans {
        match name_of(span) {
            "trial" => assert!(arg(span, "trial").is_some(), "trial spans carry their index"),
            "train" | "eval" => {
                let parent = arg(span, "parent").expect("phase spans link to a parent");
                assert!(trial_ids.contains(&parent), "train/eval must hang off a trial span");
            }
            other => panic!("unexpected span {other:?} in a plain grid campaign"),
        }
    }
    assert!(
        spans.iter().any(|e| name_of(e) == "trial" && arg(e, "timer.io.us").is_some()),
        "commit io timers must be attributed to their trial span"
    );

    // The CLI writes the same document and points at Perfetto; a
    // `--trial` filter keeps exactly one trial's subtree.
    let out_path = dir.join("trace.json");
    let out_s = out_path.to_str().expect("utf8");
    let (ok, out, err) = run_cli(&["trace", dir_s, "--out", out_s]);
    assert!(ok, "{out}\n{err}");
    assert!(out.contains("ui.perfetto.dev"), "{out}");
    assert_eq!(std::fs::read_to_string(&out_path).expect("trace file"), t.json);
    let (ok, filtered, err) = run_cli(&["trace", dir_s, "--trial", "0"]);
    assert!(ok, "{err}");
    let doc = fmt::json::parse(&filtered).expect("filtered trace parses");
    let kept: Vec<&str> = doc
        .get("traceEvents")
        .and_then(Value::as_array)
        .expect("traceEvents")
        .iter()
        .filter(|e| e.get("ph").and_then(Value::as_str) == Some("X"))
        .filter_map(|e| e.get("name").and_then(Value::as_str))
        .collect();
    assert_eq!(kept.len(), 3, "trial 0's subtree is trial+train+eval: {kept:?}");

    // perf: the run gates cleanly against its own measurement, and a
    // doctored baseline (10× the throughput) fails the gate with a
    // nonzero exit — the regression ledger's CI contract.
    let base_path = dir.join("base.json");
    let base_s = base_path.to_str().expect("utf8");
    let (ok, out, err) = run_cli(&["perf", dir_s, "--out", base_s]);
    assert!(ok, "{out}\n{err}");
    let (ok, out, err) = run_cli(&["perf", dir_s, "--baseline", base_s, "--gate", "50"]);
    assert!(ok, "{out}\n{err}");
    assert!(out.contains("perf gate ok"), "{out}");
    let mut doctored = perf::measure(&dir, "per-obs").expect("measure");
    doctored.trials_per_s *= 10.0;
    let doctored_path = dir.join("doctored.json");
    std::fs::write(&doctored_path, fmt::json::render(&doctored.to_value())).expect("write");
    let (ok, out, err) =
        run_cli(&["perf", dir_s, "--baseline", doctored_path.to_str().expect("utf8")]);
    assert!(!ok, "a 10× faster baseline must fail the gate:\n{out}");
    assert!(err.contains("perf gate FAILED"), "{err}");
    assert!(err.contains("trials/s regressed"), "{err}");

    std::fs::remove_dir_all(&dir).ok();
}
