//! Observability guarantees, pinned end to end:
//!
//! * enabling the recorder changes **nothing**: `summary.txt` and the
//!   per-trial `trials.jsonl` stay byte-identical to the disabled run;
//! * a multi-worker `--obs` campaign leaves one parseable
//!   `obs/worker-<id>.jsonl` stream per worker, and
//!   `campaign profile` folds them into a non-empty per-phase table
//!   that survives `--check`'s strict schema validation;
//! * the obs loader follows the repo's torn-tail discipline: a killed
//!   writer's unterminated fragment is dropped, interior garbage is
//!   skipped leniently (and named under `--check`);
//! * `campaign status` reports per-worker elapsed time and heartbeat
//!   age from the claim log's record timestamps.

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use frlfi::Scale;
use frlfi_campaign::{profile, runner, RunnerConfig, Scenario, SystemKind};

/// The recorder is process-global: tests that enable it (or assert on
/// its absence) serialize through this lock so one test's events can
/// never land in another's stream.
static OBS_LOCK: Mutex<()> = Mutex::new(());

fn cli() -> &'static str {
    env!("CARGO_BIN_EXE_campaign")
}

fn temp_dir(tag: &str) -> PathBuf {
    static N: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "frlfi-obs-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The multiproc suite's cheap grid campaign: 3 cells × 4 repeats.
fn scenario(name: &str) -> Scenario {
    let mut s = Scenario::new(name, SystemKind::GridWorld, Scale::Smoke);
    s.fault.bers = vec![0.0, 0.1, 0.2];
    s.fault.inject_episodes = vec![100];
    s.train.total_episodes = Some(300);
    s.repeats = Some(4);
    s
}

fn write_spec(name: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("frlfi-obs-{name}-{}.toml", std::process::id()));
    std::fs::write(&path, scenario(name).to_toml()).expect("write spec");
    path
}

fn run_cli(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(cli()).args(args).output().expect("spawn campaign CLI");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

fn spawn_cli(args: &[&str]) -> Child {
    Command::new(cli())
        .args(args)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn campaign CLI")
}

fn wait_output(child: Child, what: &str) -> String {
    let out = child.wait_with_output().expect("wait for CLI");
    let text =
        String::from_utf8_lossy(&out.stdout).into_owned() + &String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "{what} failed:\n{text}");
    text
}

fn read(dir: &Path, name: &str) -> String {
    std::fs::read_to_string(dir.join(name))
        .unwrap_or_else(|e| panic!("{name} in {}: {e}", dir.display()))
}

#[test]
fn obs_enabled_run_is_byte_identical_and_its_stream_parses_strictly() {
    let _guard = OBS_LOCK.lock().unwrap();
    let scenario = scenario("bytes");

    // Reference: recorder off, one thread (so the trial log's order is
    // deterministic and the logs compare byte-for-byte, not just the
    // summary).
    let ref_dir = temp_dir("bytes-ref");
    let cfg = RunnerConfig { threads: 1, ..RunnerConfig::default() };
    runner::run(&scenario, &ref_dir, &cfg).expect("reference run").stats.expect("complete");

    let dir = temp_dir("bytes-obs");
    let out =
        runner::run(&scenario, &dir, &RunnerConfig { obs: true, ..cfg.clone() }).expect("obs run");
    assert!(out.complete());

    assert_eq!(
        read(&dir, "summary.txt"),
        read(&ref_dir, "summary.txt"),
        "enabling obs must not change a byte of summary.txt"
    );
    assert_eq!(
        read(&dir, "trials.jsonl"),
        read(&ref_dir, "trials.jsonl"),
        "enabling obs must not change a byte of the trial log"
    );
    assert!(!ref_dir.join(profile::OBS_DIR).exists(), "disabled run must not write obs/");

    // The stream parses under strict validation and attributes the
    // campaign's work: 12 trial spans partitioned into train/eval,
    // io timers from the per-trial commits, kernel dispatch counters.
    let p = profile::load_dir(&dir, profile::CheckMode::Strict).expect("strict load");
    assert_eq!(p.workers.len(), 1, "exclusive run writes one stream");
    let w = &p.workers[0];
    assert!(w.worker.starts_with('x'), "exclusive worker id is x<pid>: {}", w.worker);
    assert_eq!(w.trials(), 12);
    assert_eq!(w.spans["train"].0, 12);
    assert_eq!(w.spans["eval"].0, 12);
    assert!(w.timers["io"].0 >= 12, "every commit times its append");
    assert!(w.counters["nn.dispatch.reference"] > 0, "grid eval dispatches reference kernels");
    assert!(w.trial_us() >= w.spans["train"].1, "trial spans cover training");

    std::fs::remove_dir_all(&ref_dir).ok();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn two_shared_workers_stream_obs_and_profile_renders_their_phases() {
    let _guard = OBS_LOCK.lock().unwrap();
    let spec = write_spec("mp-obs");
    let spec_s = spec.to_str().expect("utf8");
    let dir = temp_dir("mp-obs");
    let dir_s = dir.to_str().expect("utf8");

    // Reference bytes from a plain exclusive run.
    let ref_dir = temp_dir("mp-obs-ref");
    runner::run(&scenario("mp-obs"), &ref_dir, &RunnerConfig { threads: 1, ..Default::default() })
        .expect("reference run");

    // Two worker processes share the campaign, both with the recorder
    // on — one through the flag, one through the environment knob.
    let first = spawn_cli(&[
        "run",
        spec_s,
        "--out",
        dir_s,
        "--shared",
        "--threads",
        "1",
        "--worker-id",
        "w1",
        "--obs",
    ]);
    let start = Instant::now();
    while !dir.join("campaign.toml").exists() {
        assert!(start.elapsed() < Duration::from_secs(30), "campaign manifest never appeared");
        std::thread::sleep(Duration::from_millis(10));
    }
    let second = Command::new(cli())
        .args(["worker", dir_s, "--threads", "1", "--worker-id", "w2"])
        .env("CAMPAIGN_OBS", "1")
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn worker w2");
    wait_output(first, "shared run w1");
    wait_output(second, "worker w2");

    assert_eq!(read(&dir, "summary.txt"), read(&ref_dir, "summary.txt"));
    for worker in ["w1", "w2"] {
        assert!(
            dir.join(profile::OBS_DIR).join(format!("worker-{worker}.jsonl")).exists(),
            "{worker} must have streamed telemetry"
        );
    }

    // `campaign profile` folds both streams: a row per worker, the
    // campaign's 12 trials attributed, coordination counters visible.
    let (ok, out, _) = run_cli(&["profile", dir_s]);
    assert!(ok, "{out}");
    assert!(out.contains("w1") && out.contains("w2"), "one profile row per worker:\n{out}");
    assert!(out.contains("trial/s"), "{out}");
    assert!(out.contains("coord.claim.won"), "claim counters must surface:\n{out}");
    assert!(out.contains("campaign complete"), "{out}");
    let p = profile::load_dir(&dir, profile::CheckMode::Strict).expect("strict load");
    assert_eq!(p.trials(), 12, "every trial span lands in exactly one stream");

    // Strict validation passes on real streams.
    let (ok, out, _) = run_cli(&["profile", dir_s, "--check"]);
    assert!(ok, "{out}");
    assert!(out.contains("check ok:"), "{out}");

    // `status` picks the telemetry up as an observed rate.
    let (ok, st, _) = run_cli(&["status", dir_s]);
    assert!(ok, "{st}");
    assert!(st.contains("observed:"), "status should surface the obs-derived rate:\n{st}");

    std::fs::remove_dir_all(&ref_dir).ok();
    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_file(&spec).ok();
}

#[test]
fn profile_tolerates_torn_tails_and_check_names_interior_garbage() {
    let _guard = OBS_LOCK.lock().unwrap();
    let dir = temp_dir("torn");
    let scenario = scenario("torn");
    runner::run(
        &scenario,
        &dir,
        &RunnerConfig { threads: 1, obs: true, ..RunnerConfig::default() },
    )
    .expect("obs run");
    let dir_s = dir.to_str().expect("utf8");

    // A SIGKILLed writer's torn tail never fails validation.
    let stream = std::fs::read_dir(dir.join(profile::OBS_DIR))
        .expect("obs dir")
        .next()
        .expect("one stream")
        .expect("entry")
        .path();
    let intact = std::fs::read_to_string(&stream).expect("stream");
    std::fs::write(&stream, format!("{intact}{{\"v\":1,\"kind\":\"sp")).expect("append tail");
    let (ok, out, _) = run_cli(&["profile", dir_s, "--check"]);
    assert!(ok, "torn tail must pass --check:\n{out}");
    assert!(out.contains("1 torn tail(s)"), "{out}");

    // Interior garbage: lenient profile skips it with a warning,
    // --check fails naming the line, --quiet silences the warning.
    let mut lines: Vec<&str> = intact.lines().collect();
    let n_events = lines.len();
    lines.insert(2, "{\"v\":1,\"kind\":\"mystery\",\"ts_ms\":1}");
    std::fs::write(&stream, lines.join("\n") + "\n").expect("mangle");
    let (ok, out, err) = run_cli(&["profile", dir_s]);
    assert!(ok, "lenient profile must survive garbage:\n{out}\n{err}");
    assert!(err.contains("line 3"), "warning names the line:\n{err}");
    let p = profile::load_dir(&dir, profile::CheckMode::Lenient).expect("lenient load");
    assert_eq!(p.events() as usize, n_events, "only the garbage line is dropped");
    let (ok, _, err) = run_cli(&["profile", dir_s, "--check"]);
    assert!(!ok, "--check must fail on interior garbage");
    assert!(err.contains("line 3"), "{err}");
    let (ok, _, err) = run_cli(&["profile", dir_s, "--quiet"]);
    assert!(ok);
    assert!(!err.contains("line 3"), "--quiet must silence the skip warning:\n{err}");

    // A campaign that never streamed telemetry profiles to an empty
    // report leniently but refuses --check (CI would be asserting on
    // nothing).
    let bare = temp_dir("bare");
    runner::run(&scenario, &bare, &RunnerConfig::default()).expect("plain run");
    let bare_s = bare.to_str().expect("utf8");
    let (ok, out, _) = run_cli(&["profile", bare_s]);
    assert!(ok, "{out}");
    assert!(out.contains("no trial spans yet"), "{out}");
    let (ok, _, err) = run_cli(&["profile", bare_s, "--check"]);
    assert!(!ok, "--check on a stream-less campaign must fail");
    assert!(err.contains("no obs streams"), "{err}");

    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&bare).ok();
}

#[test]
fn status_reports_worker_elapsed_time_and_heartbeat_age() {
    let spec = write_spec("hb");
    let dir = temp_dir("hb");
    let dir_s = dir.to_str().expect("utf8");

    // Open the campaign and stop early so incomplete trials remain.
    let (ok, out, err) =
        run_cli(&["run", spec.to_str().expect("utf8"), "--out", dir_s, "--max-trials", "2"]);
    assert!(ok, "{out}\n{err}");

    // Hand-craft claim records the way a live worker would have
    // written them: an issue timestamp 90 s back, a renewal 2 s back,
    // and an unexpired lease so the worker counts as active.
    let now = frlfi_campaign::coord::now_ms();
    let claims = format!(
        "{{\"trial\":2,\"gen\":1,\"worker\":\"w-live\",\"deadline_ms\":{},\"ts_ms\":{}}}\n\
         {{\"trial\":2,\"gen\":1,\"worker\":\"w-live\",\"deadline_ms\":{},\"ts_ms\":{}}}\n\
         {{\"trial\":3,\"gen\":1,\"worker\":\"w-old\",\"deadline_ms\":{}}}\n",
        now + 60_000,
        now - 90_000,
        now + 60_000,
        now - 2_000,
        now + 60_000,
    );
    std::fs::write(dir.join("claims.jsonl"), claims).expect("write claims");

    let (ok, st, _) = run_cli(&["status", dir_s]);
    assert!(ok, "{st}");
    assert!(st.contains("w-live"), "{st}");
    assert!(st.contains("up 90."), "elapsed since first claim:\n{st}");
    assert!(st.contains("last heartbeat 2."), "age of latest renewal:\n{st}");
    // Records that predate the ts_ms field degrade to `?`, not 1970.
    assert!(st.contains("up ?") && st.contains("last heartbeat ? ago"), "{st}");

    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_file(&spec).ok();
}
