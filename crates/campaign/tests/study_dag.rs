//! Golden equivalence for the task-DAG study campaigns.
//!
//! The train-once / eval-many builtins (`fig4`, `fig8a`, `fig8b`,
//! `datatypes`, `layers`) expand into a task DAG — train tasks publish
//! weight artifacts, eval tasks load them — and the bar is the same
//! one every other campaign has pinned: the completed `summary.txt`
//! must be **byte-identical** to the sequential figure driver's table,
//! across thread counts, interrupt/resume, artifact corruption,
//! batched vs per-observation evaluation, and shared-mode
//! coordination, while every model trains exactly once per campaign
//! directory (asserted from the append-only `artifacts.jsonl`).

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

use frlfi::experiments::study::StudyKind;
use frlfi::Scale;
use frlfi_campaign::{artifacts, registry, runner, CoordConfig, CoordMode, RunnerConfig};

fn temp_dir(tag: &str) -> PathBuf {
    static N: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "frlfi-study-dag-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The sequential reference: the figure driver's rendered table,
/// exactly as `frlfi-bench --bin <study> -- smoke` computes it.
fn driver_table(kind: StudyKind) -> String {
    kind.geometry(Scale::Smoke)
        .expect("study geometry")
        .run()
        .expect("sequential driver run")
        .render()
}

fn summary(dir: &Path) -> String {
    std::fs::read_to_string(dir.join("summary.txt"))
        .unwrap_or_else(|e| panic!("summary.txt in {}: {e}", dir.display()))
}

/// Model ids from `artifacts.jsonl`, in publication order.
fn trained_models(dir: &Path) -> Vec<usize> {
    artifacts::load_records(dir).expect("artifacts.jsonl").iter().map(|r| r.model).collect()
}

fn assert_trained_exactly_once(dir: &Path, n_models: usize, what: &str) {
    let mut trained = trained_models(dir);
    trained.sort_unstable();
    assert_eq!(
        trained,
        (0..n_models).collect::<Vec<_>>(),
        "{what}: every model must train exactly once"
    );
}

#[test]
fn grid_study_builtins_match_their_sequential_drivers_byte_for_byte() {
    for (name, kind, n_models) in [
        ("fig4", StudyKind::Fig4, 2),
        ("fig8a", StudyKind::Fig8Grid, 1),
        ("datatypes", StudyKind::Datatypes, 1),
        ("layers", StudyKind::Layers, 1),
    ] {
        let reference = driver_table(kind);
        let scenario = registry::builtin(name, Scale::Smoke).expect(name);
        let dir = temp_dir(name);
        let out = runner::run(&scenario, &dir, &RunnerConfig { threads: 2, ..Default::default() })
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(out.complete(), "{name}: campaign incomplete");
        assert_eq!(
            out.table.as_ref().expect("complete table").render(),
            reference,
            "{name}: rendered statistics diverged from the sequential driver"
        );
        assert_eq!(
            summary(&dir),
            reference,
            "{name}: summary.txt diverged from the sequential driver"
        );
        assert_trained_exactly_once(&dir, n_models, name);
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn fig8b_drone_study_matches_its_sequential_driver_byte_for_byte() {
    let reference = driver_table(StudyKind::Fig8Drone);
    let scenario = registry::builtin("fig8b", Scale::Smoke).expect("fig8b");
    let dir = temp_dir("fig8b");
    let out = runner::run(&scenario, &dir, &RunnerConfig { threads: 2, ..Default::default() })
        .expect("fig8b campaign");
    assert!(out.complete());
    assert_eq!(summary(&dir), reference, "fig8b summary diverged from the sequential driver");
    assert_trained_exactly_once(&dir, 1, "fig8b");
    std::fs::remove_dir_all(&dir).ok();
}

/// The committed golden the CI multi-process and chaos legs diff
/// against. If a deliberate change moves these numbers, regenerate
/// `tests/data/fig4_smoke_summary.txt` from
/// `campaign run fig4 --scale smoke` and say so in the PR.
#[test]
fn committed_fig4_golden_matches_the_sequential_driver() {
    let committed = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../tests/data/fig4_smoke_summary.txt"
    ))
    .expect("committed golden tests/data/fig4_smoke_summary.txt");
    assert_eq!(
        driver_table(StudyKind::Fig4),
        committed,
        "tests/data/fig4_smoke_summary.txt is stale — regenerate it if the change is intended"
    );
}

#[test]
fn interrupted_study_resumes_across_modes_and_a_torn_artifact_to_identical_bytes() {
    let reference = driver_table(StudyKind::Fig4);
    let scenario = registry::builtin("fig4", Scale::Smoke).expect("fig4");
    let total = scenario.expand().expect("expand").total_trials();
    let dir = temp_dir("fig4-resume");

    // Leg 1, per-observation: a trial budget interrupts the campaign
    // after three eval trials — but both train tasks run up front, so
    // the artifacts have already landed.
    let leg1 = runner::run(
        &scenario,
        &dir,
        &RunnerConfig { threads: 1, max_new_trials: Some(3), ..Default::default() },
    )
    .expect("interrupted leg");
    assert!(!leg1.complete(), "the trial budget must interrupt the campaign");
    assert_eq!(leg1.new_trials, 3);
    assert_trained_exactly_once(&dir, 2, "interrupted leg");
    let digests_before = artifacts::load_records(&dir).expect("records");

    // Tear an artifact between legs — the simulated kill-mid-publish.
    // The resume's digest check must reject it and retrain, not crash
    // and not silently evaluate a corrupt model.
    std::fs::write(artifacts::model_path(&dir, 0), b"torn mid-write").expect("corrupt artifact");

    // Leg 2, batched: evaluation modes mix freely across resume
    // sessions, and the final bytes must not care about any of it.
    let leg2 = runner::run(
        &scenario,
        &dir,
        &RunnerConfig { threads: 2, batched: true, ..Default::default() },
    )
    .expect("resume leg");
    assert!(leg2.complete());
    assert_eq!(leg2.new_trials, total - 3, "resume must skip the persisted trials");
    assert_eq!(
        summary(&dir),
        reference,
        "interrupt + mode switch + torn artifact must not change a byte"
    );

    // The retrain republished model 0; deterministic training means
    // the fresh record carries the original digest.
    let records = artifacts::load_records(&dir).expect("records");
    assert!(records.len() > 2, "the torn artifact must have been republished: {records:?}");
    for r in &records {
        let original = digests_before.iter().find(|o| o.model == r.model).expect("model");
        assert_eq!(r.digest, original.digest, "retraining model {} must be bitwise", r.model);
    }

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn shared_workers_train_each_model_exactly_once_and_match_the_driver() {
    let reference = driver_table(StudyKind::Fig4);
    let scenario = registry::builtin("fig4", Scale::Smoke).expect("fig4");
    let dir = temp_dir("fig4-shared");
    let cfg = RunnerConfig {
        threads: 2,
        coord: CoordMode::Shared(CoordConfig {
            worker_id: "study-w".into(),
            lease_ms: 60_000,
            poll_ms: 20,
        }),
        ..Default::default()
    };
    let out = runner::run(&scenario, &dir, &cfg).expect("shared study run");
    assert!(out.complete());
    assert_eq!(summary(&dir), reference, "shared-mode study summary diverged from the driver");
    // Train tasks are claim-gated: two eval threads racing through the
    // claims log must still train each model exactly once.
    assert_trained_exactly_once(&dir, 2, "shared run");
    std::fs::remove_dir_all(&dir).ok();
}
