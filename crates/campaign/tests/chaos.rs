//! The chaos torture harness: deterministic infrastructure fault
//! injection against the campaign stack's own persistence.
//!
//! The bar is the same bitwise-determinism bar every PR has pinned:
//! for **every** I/O operation of a small shared-mode campaign, a
//! fault injected at exactly that operation must leave the completed
//! `summary.txt` byte-identical to the fault-free run (transient
//! faults are retried and recovered); a *persistent* fault must
//! degrade gracefully — deterministic quarantine, explicitly marked
//! degraded summary, nonzero exit unless `--allow-partial` — and a
//! later healthy run must reclaim the quarantined trials and restore
//! the byte-identical summary.
//!
//! Chaos state is process-global, so every test here serializes on
//! one lock and disarms via an RAII guard.
//!
//! `CHAOS_SWEEP_QUICK=1` (CI) sweeps a subset of injection points;
//! `CHAOS_SWEEP_STRIDE=N` picks the stride explicitly.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use frlfi::Scale;
use frlfi_campaign::io::chaos::{self, ChaosSpec};
use frlfi_campaign::quarantine::QuarantineKind;
use frlfi_campaign::{
    profile, quarantine, registry, runner, CoordConfig, CoordMode, RunnerConfig, Scenario,
    SystemKind,
};

/// Chaos state is process-global; tests that arm it must not overlap.
static CHAOS_LOCK: Mutex<()> = Mutex::new(());

/// Disarms on drop, so a failing assertion cannot leak an armed
/// injector into the next test.
struct Armed;

impl Armed {
    fn arm(spec: ChaosSpec) -> Armed {
        chaos::arm(spec);
        Armed
    }
}

impl Drop for Armed {
    fn drop(&mut self) {
        chaos::disarm();
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    static N: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "frlfi-chaos-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The smallest campaign that still exercises every I/O path: one
/// cell, two repeats, shared-mode coordination.
fn scenario() -> Scenario {
    let mut s = Scenario::new("chaos", SystemKind::GridWorld, Scale::Smoke);
    s.fault.bers = vec![0.1];
    s.fault.inject_episodes = vec![40];
    s.train.total_episodes = Some(60);
    s.repeats = Some(2);
    s
}

fn shared_cfg_lease(lease_ms: u64) -> RunnerConfig {
    RunnerConfig {
        threads: 1,
        coord: CoordMode::Shared(CoordConfig { worker_id: "cw".into(), lease_ms, poll_ms: 20 }),
        ..RunnerConfig::default()
    }
}

/// Long lease + snappy poll: the heartbeat stays quiet for the
/// sub-second runs here, keeping the operation sequence deterministic
/// across sweep iterations.
fn shared_cfg() -> RunnerConfig {
    shared_cfg_lease(60_000)
}

fn summary(dir: &Path) -> String {
    std::fs::read_to_string(dir.join("summary.txt"))
        .unwrap_or_else(|e| panic!("summary.txt in {}: {e}", dir.display()))
}

/// Fault-free single-thread exclusive reference — the bytes every
/// chaos configuration must converge back to.
fn reference_summary() -> String {
    let dir = temp_dir("ref");
    let out =
        runner::run(&scenario(), &dir, &RunnerConfig { threads: 1, ..RunnerConfig::default() })
            .expect("reference run");
    assert!(out.complete());
    let text = summary(&dir);
    std::fs::remove_dir_all(&dir).ok();
    text
}

#[test]
fn every_swept_injection_point_preserves_summary_bytes() {
    let _serial = CHAOS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let reference = reference_summary();

    // Pass 1 — count the fault-free run's operations: a rate=0 spec
    // injects nothing but numbers every instrumented operation.
    let ops = {
        let _armed = Armed::arm(ChaosSpec { seed: 0, ..ChaosSpec::default() });
        let dir = temp_dir("count");
        let out = runner::run(&scenario(), &dir, &shared_cfg()).expect("count run");
        assert!(out.complete());
        assert_eq!(summary(&dir), reference, "rate=0 chaos must be inert");
        std::fs::remove_dir_all(&dir).ok();
        let ops = chaos::ops();
        assert_eq!(chaos::injected(), 0);
        ops
    };
    assert!(
        ops > 20,
        "a shared 2-trial campaign performs dozens of instrumented I/O operations, \
         counted {ops} — did the shim get bypassed?"
    );

    // Pass 2 — sweep the injection point across every operation
    // index. Each injected fault is transient (a latency spike, or an
    // error the retry policy recovers), so every run must complete
    // with the identical summary. CI sets CHAOS_SWEEP_QUICK=1 to
    // sample the space; the full sweep is the default.
    let stride: u64 = match std::env::var("CHAOS_SWEEP_STRIDE") {
        Ok(v) => v.parse().expect("CHAOS_SWEEP_STRIDE"),
        Err(_) if std::env::var("CHAOS_SWEEP_QUICK").is_ok_and(|v| v == "1") => (ops / 12).max(1),
        Err(_) => 1,
    };
    let mut swept = 0u64;
    for k in (0..ops).step_by(stride as usize) {
        let _armed =
            Armed::arm(ChaosSpec { seed: k ^ 0xC4A05, op: Some(k), ..ChaosSpec::default() });
        let dir = temp_dir("sweep");
        let out = runner::run(&scenario(), &dir, &shared_cfg())
            .unwrap_or_else(|e| panic!("run with fault at op {k} must recover, got: {e}"));
        assert!(out.complete(), "fault at op {k} left the campaign incomplete");
        assert!(out.quarantined.is_empty(), "a single transient fault must never quarantine");
        assert_eq!(
            summary(&dir),
            reference,
            "summary.txt diverged with a fault injected at op {k}"
        );
        std::fs::remove_dir_all(&dir).ok();
        swept += 1;
    }
    println!("swept {swept} of {ops} injection points (stride {stride})");
}

#[test]
fn persistent_fault_quarantines_deterministically_and_a_healthy_resume_recovers() {
    let _serial = CHAOS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let reference = reference_summary();

    // A persistently failing trial log: every `trials.append`
    // operation faults, retries included — the retry budget exhausts
    // and both trials must be quarantined.
    let poison = || ChaosSpec {
        seed: 7,
        tag: Some("trials.append".into()),
        persist: true,
        ..ChaosSpec::default()
    };
    // A short lease, so the healthy resume below reaps the poisoned
    // run's abandoned claims instead of waiting them out.
    let run_poisoned = |dir: &Path, allow_partial: bool| {
        let _armed = Armed::arm(poison());
        let cfg = RunnerConfig { allow_partial, ..shared_cfg_lease(300) };
        runner::run(&scenario(), dir, &cfg)
    };

    let dir_a = temp_dir("poison-a");
    let err = run_poisoned(&dir_a, false).expect_err("exhausted retries must fail the run");
    assert!(err.contains("quarantined"), "{err}");
    assert!(err.contains("--allow-partial"), "{err}");
    let records = quarantine::load(&dir_a).expect("quarantine log");
    assert_eq!(records.len(), 2, "both trials must be quarantined: {records:?}");
    assert!(records[0].error.contains("chaos"), "{}", records[0].error);
    let degraded = summary(&dir_a);
    assert!(degraded.contains("DEGRADED"), "{degraded}");
    assert!(degraded.contains("0/2 trials completed"), "{degraded}");
    assert!(degraded.contains("(0, 0)") && degraded.contains("(0, 1)"), "{degraded}");

    // Deterministic degradation: the same fault in a fresh directory
    // produces a byte-identical degraded summary.
    let dir_b = temp_dir("poison-b");
    run_poisoned(&dir_b, false).expect_err("same fault, same failure");
    assert_eq!(summary(&dir_b), degraded, "degraded summaries must be deterministic");

    // --allow-partial accepts the same degraded outcome as success.
    let dir_c = temp_dir("poison-c");
    let out = run_poisoned(&dir_c, true).expect("--allow-partial accepts a degraded outcome");
    assert_eq!(out.quarantined, vec![0, 1]);
    assert!(!out.complete());
    assert_eq!(summary(&dir_c), degraded);

    // Graceful degradation is not the end state: a healthy run over
    // the same directory reclaims the quarantined trials
    // (bitwise-identically) and replaces the degraded summary with
    // the real one.
    let healed = runner::run(&scenario(), &dir_a, &shared_cfg_lease(300)).expect("healthy resume");
    assert!(healed.complete());
    assert_eq!(healed.new_trials, 2, "both quarantined trials re-run");
    assert_eq!(summary(&dir_a), reference, "recovery must restore the byte-identical summary");

    for dir in [dir_a, dir_b, dir_c] {
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn transient_faults_recover_via_retry_and_surface_in_the_profile() {
    let _serial = CHAOS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let reference = reference_summary();

    // Every third `trials.append` operation faults: each commit's
    // first write attempt fails and its retry lands — the
    // transient-then-recover shape — while the obs recorder is on so
    // the retry counters reach the profile.
    let dir = temp_dir("retry");
    {
        let _armed = Armed::arm(ChaosSpec {
            seed: 11,
            tag: Some("trials.append".into()),
            every: 3,
            ..ChaosSpec::default()
        });
        let out = runner::run(&scenario(), &dir, &RunnerConfig { obs: true, ..shared_cfg() })
            .expect("retries must absorb periodic transients");
        assert!(out.complete());
        assert!(out.quarantined.is_empty());
        assert!(chaos::injected() > 0, "the periodic fault must actually have fired");
    }
    assert_eq!(summary(&dir), reference, "retried commits must not change a byte");

    // `campaign profile` surfaces what the run endured: injected
    // faults and recovered retries, counted per worker.
    let p = profile::load_dir(&dir, profile::CheckMode::Lenient).expect("profile");
    let count = |name: &str| -> u64 {
        p.workers.iter().map(|w| w.counters.get(name).copied().unwrap_or(0)).sum()
    };
    assert!(count("io.retry") > 0, "io.retry must surface in the profile");
    assert!(count("io.retry.recovered") > 0, "recoveries must surface in the profile");
    assert_eq!(count("io.retry.exhausted"), 0, "nothing should have exhausted");
    assert!(
        count("chaos.inject.eio")
            + count("chaos.inject.short_write")
            + count("chaos.inject.fsync")
            + count("chaos.inject.latency")
            > 0,
        "injections must be counted"
    );

    std::fs::remove_dir_all(&dir).ok();
}

/// The task-DAG artifact path under chaos: `fig4` is the smallest
/// builtin study (two train tasks publishing weight artifacts, thirty
/// artifact-gated eval trials).
fn study_scenario() -> Scenario {
    registry::builtin("fig4", Scale::Smoke).expect("fig4 builtin")
}

/// Fault-free single-thread reference for the study campaign.
fn study_reference() -> String {
    let dir = temp_dir("study-ref");
    let out = runner::run(
        &study_scenario(),
        &dir,
        &RunnerConfig { threads: 1, ..RunnerConfig::default() },
    )
    .expect("reference study run");
    assert!(out.complete());
    let text = summary(&dir);
    std::fs::remove_dir_all(&dir).ok();
    text
}

/// Every chaos-instrumented operation site on the artifact publish /
/// consume path, in publish-protocol order.
const ARTIFACT_SITES: [&str; 7] = [
    "artifact.create",
    "artifact.write",
    "artifact.fsync",
    "artifact.rename",
    "artifacts.append",
    "artifacts.read",
    "artifact.read",
];

/// `CHAOS_SWEEP_QUICK=1` samples every other site, mirroring the
/// strided main sweep.
fn artifact_sites() -> Vec<&'static str> {
    let stride = if std::env::var("CHAOS_SWEEP_QUICK").is_ok_and(|v| v == "1") { 2 } else { 1 };
    ARTIFACT_SITES.iter().copied().step_by(stride).collect()
}

#[test]
fn a_transient_fault_at_every_artifact_site_recovers_byte_identically() {
    let _serial = CHAOS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let reference = study_reference();

    // `every = u64::MAX` faults exactly the first matching operation:
    // one transient fault per site, which the retry budget (or the
    // digest-verified retrain fallback) must absorb without moving a
    // byte of the final summary.
    for site in artifact_sites() {
        let _armed = Armed::arm(ChaosSpec {
            seed: 0x417,
            tag: Some(site.into()),
            every: u64::MAX,
            ..ChaosSpec::default()
        });
        let dir = temp_dir("art-transient");
        let out = runner::run(&study_scenario(), &dir, &shared_cfg())
            .unwrap_or_else(|e| panic!("transient fault at {site} must recover, got: {e}"));
        assert!(out.complete(), "transient fault at {site} left the campaign incomplete");
        assert!(out.quarantined.is_empty(), "a single transient at {site} must never quarantine");
        assert!(chaos::injected() > 0, "the {site} fault never fired — tag drift?");
        assert_eq!(summary(&dir), reference, "summary diverged with a transient fault at {site}");
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn a_persistent_fault_at_every_artifact_site_quarantines_deterministically_or_completes() {
    let _serial = CHAOS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let reference = study_reference();

    for site in artifact_sites() {
        let poison = || ChaosSpec {
            seed: 0x77,
            tag: Some(site.into()),
            persist: true,
            ..ChaosSpec::default()
        };
        let run_poisoned = |dir: &Path| {
            let _armed = Armed::arm(poison());
            runner::run(&study_scenario(), dir, &shared_cfg_lease(300))
        };

        let dir_a = temp_dir("art-poison-a");
        match run_poisoned(&dir_a) {
            // Consume-side sites have a pure fallback — retrain the
            // model in-process, bitwise-identically — so the campaign
            // must complete with the reference bytes despite every
            // read of the artifact failing.
            Ok(out) => {
                assert!(out.complete(), "persistent {site}: fallback run incomplete");
                assert_eq!(summary(&dir_a), reference, "persistent {site}: summary diverged");
            }
            // Publish-side sites exhaust the retry budget: the train
            // task is quarantined, which deterministically poisons
            // every dependent eval trial.
            Err(err) if err.contains("quarantined") => {
                let records = quarantine::load(&dir_a).expect("quarantine log");
                assert!(
                    records.iter().any(|r| r.kind == QuarantineKind::Train),
                    "persistent {site}: a train task must be quarantined, got {records:?}"
                );
                let degraded = summary(&dir_a);
                assert!(degraded.contains("DEGRADED"), "persistent {site}: {degraded}");
                // Same fault, fresh directory: byte-identical
                // degradation.
                let dir_b = temp_dir("art-poison-b");
                run_poisoned(&dir_b).expect_err("same fault, same failure");
                assert_eq!(
                    summary(&dir_b),
                    degraded,
                    "persistent {site}: degraded summaries must be deterministic"
                );
                std::fs::remove_dir_all(&dir_b).ok();
            }
            // Losing the publication log itself is an infrastructure
            // failure with no graceful half-state: the run reports the
            // I/O error without fabricating a summary.
            Err(err) => {
                assert!(err.contains("chaos"), "persistent {site}: unexpected error: {err}");
            }
        }

        // Whatever the degraded shape, a healthy run over the same
        // directory must converge on the reference bytes.
        let healed = runner::run(&study_scenario(), &dir_a, &shared_cfg_lease(300))
            .unwrap_or_else(|e| panic!("healthy resume after persistent {site}: {e}"));
        assert!(healed.complete(), "healthy resume after persistent {site} incomplete");
        assert_eq!(
            summary(&dir_a),
            reference,
            "healthy resume after persistent {site} must restore the byte-identical summary"
        );
        std::fs::remove_dir_all(&dir_a).ok();
    }
}
