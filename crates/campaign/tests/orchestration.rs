//! End-to-end campaign orchestration guarantees:
//!
//! * a declarative campaign reproduces its figure driver exactly;
//! * interrupt + resume is bit-identical to a single pass, at multiple
//!   thread counts;
//! * campaign directories are defended against mixing scenarios and
//!   torn trial logs.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use frlfi::experiments::fig3;
use frlfi::Scale;
use frlfi_campaign::{registry, runner, RunnerConfig, Scenario, SystemKind};
use frlfi_fault::CellStats;

fn temp_dir(tag: &str) -> PathBuf {
    static N: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "frlfi-campaign-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn cheap_grid_scenario(name: &str) -> Scenario {
    let mut s = Scenario::new(name, SystemKind::GridWorld, Scale::Smoke);
    s.fault.bers = vec![0.0, 0.2];
    s.fault.inject_episodes = vec![40];
    s.train.total_episodes = Some(60);
    s.repeats = Some(3);
    s
}

fn assert_stats_bit_identical(a: &[CellStats], b: &[CellStats]) {
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b.iter()) {
        assert_eq!(x.mean.to_bits(), y.mean.to_bits());
        assert_eq!(x.std.to_bits(), y.std.to_bits());
        assert_eq!(x.n, y.n);
    }
}

#[test]
fn fig3a_campaign_reproduces_the_figure_driver() {
    let scenario = registry::builtin("fig3a", Scale::Smoke).expect("built-in");

    // The campaign's expanded cells are the driver's cells, verbatim.
    let campaign = scenario.expand().expect("expands");
    let driver_cells = fig3::heatmap_cells(Scale::Smoke, Some(frlfi::fault::FaultSide::AgentSide));
    match &campaign.trials {
        frlfi_campaign::Trials::Grid(cells) => assert_eq!(cells, &driver_cells),
        _ => panic!("grid campaign expected"),
    }

    // And the executed campaign reproduces the driver's table exactly.
    let dir = temp_dir("fig3a");
    let out = runner::run(&scenario, &dir, &RunnerConfig::default()).expect("runs");
    assert!(out.complete());
    let table = out.table.expect("complete");
    let driver = fig3::agent_faults(Scale::Smoke);
    assert_eq!(table.rows.len(), driver.rows.len());
    for (r, (_, driver_row)) in driver.rows.iter().enumerate() {
        for (c, &v) in driver_row.iter().enumerate() {
            assert_eq!(
                table.value(r, c).to_bits(),
                v.to_bits(),
                "cell ({r}, {c}) differs from experiments::fig3"
            );
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn interrupted_campaign_resumes_bit_identically_across_thread_counts() {
    let scenario = cheap_grid_scenario("resume-test");

    // Reference: one uninterrupted pass.
    let ref_dir = temp_dir("ref");
    let reference =
        runner::run(&scenario, &ref_dir, &RunnerConfig { threads: 2, ..RunnerConfig::default() })
            .expect("reference run");
    let ref_stats = reference.stats.expect("complete");

    for &threads in &[1usize, 3, 8] {
        let dir = temp_dir("resumed");
        // Kill after 1 trial, then after 2 more, then run to completion —
        // with a different thread count each leg.
        let legs = [Some(1), Some(2), None];
        let mut last = None;
        for (i, &max) in legs.iter().enumerate() {
            let leg_threads = [threads, 1, threads][i];
            let out = runner::run(
                &scenario,
                &dir,
                &RunnerConfig {
                    threads: leg_threads,
                    max_new_trials: max,
                    ..RunnerConfig::default()
                },
            )
            .expect("leg runs");
            last = Some(out);
        }
        let out = last.expect("ran");
        assert!(out.complete());
        assert!(out.new_trials < out.total_trials, "resume must skip persisted trials");
        assert_stats_bit_identical(&ref_stats, &out.stats.expect("complete"));
        std::fs::remove_dir_all(&dir).ok();
    }
    std::fs::remove_dir_all(&ref_dir).ok();
}

#[test]
fn batched_mode_matches_per_observation_mode_bitwise() {
    let scenario = cheap_grid_scenario("batched-mode");
    let ref_dir = temp_dir("batched-ref");
    let reference = runner::run(&scenario, &ref_dir, &RunnerConfig::default()).expect("reference");
    let ref_stats = reference.stats.expect("complete");

    for &threads in &[1usize, 3] {
        let dir = temp_dir("batched");
        let out = runner::run(
            &scenario,
            &dir,
            &RunnerConfig { threads, batched: true, ..RunnerConfig::default() },
        )
        .expect("batched run");
        assert!(out.complete());
        assert_stats_bit_identical(&ref_stats, &out.stats.expect("complete"));
        std::fs::remove_dir_all(&dir).ok();
    }

    // Modes mix freely across resume legs: a batched leg continues a
    // per-observation leg and the final statistics are unchanged.
    let dir = temp_dir("batched-mixed");
    runner::run(
        &scenario,
        &dir,
        &RunnerConfig { threads: 2, max_new_trials: Some(2), ..RunnerConfig::default() },
    )
    .expect("per-observation leg");
    let out = runner::run(
        &scenario,
        &dir,
        &RunnerConfig { threads: 2, batched: true, ..RunnerConfig::default() },
    )
    .expect("batched resume leg");
    assert!(out.complete());
    assert!(out.new_trials < out.total_trials, "resume must skip persisted trials");
    assert_stats_bit_identical(&ref_stats, &out.stats.expect("complete"));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&ref_dir).ok();
}

#[test]
fn wide_summary_adds_spread_columns_without_touching_the_means_grid() {
    let scenario = cheap_grid_scenario("wide-summary");
    let plain_dir = temp_dir("wide-off");
    let plain = runner::run(&scenario, &plain_dir, &RunnerConfig::default()).expect("plain");
    let plain_text = std::fs::read_to_string(plain_dir.join("summary.txt")).expect("summary");
    assert!(plain.wide_table.is_none(), "wide table is opt-in");

    let wide_dir = temp_dir("wide-on");
    let out = runner::run(
        &scenario,
        &wide_dir,
        &RunnerConfig { wide_summary: true, batched: true, ..RunnerConfig::default() },
    )
    .expect("wide");
    let text = std::fs::read_to_string(wide_dir.join("summary.txt")).expect("summary");
    // The standard means grid is byte-identical up front...
    assert!(text.starts_with(&plain_text), "means grid must be unchanged:\n{text}");
    // ...followed by the wide table: header row + one labelled row per
    // cell with mean/min/max/ci95 columns.
    let wide = out.wide_table.expect("wide table present");
    assert_eq!(wide.columns, vec!["mean", "min", "max", "ci95"]);
    assert_eq!(wide.rows.len(), 2, "one row per campaign cell");
    assert!(text.contains("per-cell spread over 3 repeats"), "{text}");
    assert!(text.contains("ber 20% @ ep40"), "{text}");
    let stats = out.stats.expect("complete");
    for (r, s) in stats.iter().enumerate() {
        assert_eq!(wide.value(r, 0).to_bits(), s.mean.to_bits());
        assert_eq!(wide.value(r, 1).to_bits(), s.min.to_bits());
        assert_eq!(wide.value(r, 2).to_bits(), s.max.to_bits());
        assert_eq!(wide.value(r, 3).to_bits(), s.ci95_half_width().to_bits());
        assert!(s.min <= s.mean && s.mean <= s.max);
    }
    std::fs::remove_dir_all(&plain_dir).ok();
    std::fs::remove_dir_all(&wide_dir).ok();
}

#[test]
fn campaign_dir_rejects_a_different_scenario() {
    let dir = temp_dir("mismatch");
    let a = cheap_grid_scenario("scenario-a");
    runner::run(
        &a,
        &dir,
        &RunnerConfig { threads: 1, max_new_trials: Some(1), ..RunnerConfig::default() },
    )
    .expect("first leg");
    let mut b = cheap_grid_scenario("scenario-b");
    b.fault.bers = vec![0.0, 0.1];
    let err = runner::run(&b, &dir, &RunnerConfig::default()).expect_err("must refuse");
    assert!(err.contains("different campaign"), "{err}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn torn_trailing_record_is_tolerated_and_rerun() {
    let dir = temp_dir("torn");
    let scenario = cheap_grid_scenario("torn-test");
    runner::run(
        &scenario,
        &dir,
        &RunnerConfig { threads: 1, max_new_trials: Some(2), ..RunnerConfig::default() },
    )
    .expect("partial run");
    // Simulate a crash mid-write: a torn, unparseable trailing line.
    use std::io::Write;
    let mut f =
        std::fs::OpenOptions::new().append(true).open(dir.join("trials.jsonl")).expect("open log");
    write!(f, "{{\"cell\":1,\"repe").expect("append torn tail");
    drop(f);

    // Resume in two legs: the first appends new records after the torn
    // tail (which must be truncated away, not merged into one corrupt
    // line), and the second re-reads the log it left behind.
    runner::run(
        &scenario,
        &dir,
        &RunnerConfig { threads: 1, max_new_trials: Some(2), ..RunnerConfig::default() },
    )
    .expect("resume after torn tail");
    let out = runner::run(&scenario, &dir, &RunnerConfig::default()).expect("final resume");
    assert!(out.complete());

    // And it still matches a clean single pass.
    let clean_dir = temp_dir("torn-clean");
    let clean = runner::run(&scenario, &clean_dir, &RunnerConfig::default()).expect("clean");
    assert_stats_bit_identical(&clean.stats.expect("c"), &out.stats.expect("o"));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&clean_dir).ok();
}

#[test]
fn corrupt_interior_record_is_an_error() {
    let dir = temp_dir("corrupt");
    let scenario = cheap_grid_scenario("corrupt-test");
    runner::run(
        &scenario,
        &dir,
        &RunnerConfig { threads: 1, max_new_trials: Some(1), ..RunnerConfig::default() },
    )
    .expect("partial run");
    use std::io::Write;
    let mut f =
        std::fs::OpenOptions::new().append(true).open(dir.join("trials.jsonl")).expect("open log");
    writeln!(f, "not json").expect("append");
    writeln!(f, "also not json").expect("append");
    drop(f);
    let err = runner::run(&scenario, &dir, &RunnerConfig::default()).expect_err("must refuse");
    assert!(err.contains("line"), "{err}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn spec_file_round_trip_drives_the_same_campaign() {
    // A scenario written to TOML, re-parsed and run, is the same
    // campaign (what `campaign run <spec.toml>` does).
    let scenario = cheap_grid_scenario("toml-drive");
    let reparsed = Scenario::from_toml(&scenario.to_toml()).expect("parse");
    assert_eq!(scenario, reparsed);

    let dir_a = temp_dir("toml-a");
    let dir_b = temp_dir("toml-b");
    let a = runner::run(&scenario, &dir_a, &RunnerConfig::default()).expect("a");
    let b = runner::run(&reparsed, &dir_b, &RunnerConfig::default()).expect("b");
    assert_stats_bit_identical(&a.stats.expect("a"), &b.stats.expect("b"));
    std::fs::remove_dir_all(&dir_a).ok();
    std::fs::remove_dir_all(&dir_b).ok();
}

#[test]
fn new_scenario_variants_run_end_to_end() {
    for name in ["grid-dynamic", "grid-dropout", "grid-fleet"] {
        let mut scenario = registry::builtin(name, Scale::Smoke).expect("built-in");
        // Trim to a handful of trials: variants differ in mechanism,
        // not statistical weight, at test time.
        scenario.fault.bers = vec![0.0, 0.2];
        scenario.fault.inject_episodes = vec![30];
        scenario.train.total_episodes = Some(60);
        scenario.repeats = Some(1);
        if name == "grid-fleet" {
            scenario.fleet.agents_sweep = vec![1, 2];
        }
        let dir = temp_dir(name);
        let out = runner::run(&scenario, &dir, &RunnerConfig::default())
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(out.complete(), "{name}");
        let stats = out.stats.expect("complete");
        assert!(
            stats.iter().all(|s| (0.0..=100.0).contains(&s.mean)),
            "{name}: success rates out of range: {stats:?}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn drone_scenario_variants_run_end_to_end_in_both_modes() {
    // Trimmed drone-dynamic / drone-dropout campaigns: each runs to
    // completion sequentially and batched, with bit-identical
    // statistics between the modes (the full builtin geometry is
    // pinned by tests/golden_equivalence.rs).
    for name in ["drone-dynamic", "drone-dropout"] {
        let mut scenario = registry::builtin(name, Scale::Smoke).expect("built-in");
        scenario.fault.bers = vec![0.0, 1e-2];
        scenario.fault.inject_episodes = vec![3];
        scenario.train.total_episodes = Some(5);
        scenario.train.pretrain_episodes = Some(2);
        scenario.train.eval_attempts = Some(2);
        scenario.repeats = Some(2);

        let seq_dir = temp_dir(&format!("{name}-seq"));
        let seq = runner::run(&scenario, &seq_dir, &RunnerConfig::default())
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(seq.complete(), "{name}");
        let seq_stats = seq.stats.expect("complete");
        let max = 361.0 * 2.0; // full step budget × speed
        assert!(
            seq_stats.iter().all(|s| s.mean > 0.0 && s.mean <= max),
            "{name}: flight distances out of range: {seq_stats:?}"
        );

        let bat_dir = temp_dir(&format!("{name}-bat"));
        let bat = runner::run(
            &scenario,
            &bat_dir,
            &RunnerConfig { threads: 2, batched: true, ..RunnerConfig::default() },
        )
        .unwrap_or_else(|e| panic!("{name} batched: {e}"));
        assert!(bat.complete(), "{name} batched");
        assert_stats_bit_identical(&seq_stats, &bat.stats.expect("complete"));

        // The two modes also render byte-identical summaries.
        let seq_text = std::fs::read_to_string(seq_dir.join("summary.txt")).expect("summary");
        let bat_text = std::fs::read_to_string(bat_dir.join("summary.txt")).expect("summary");
        assert_eq!(seq_text, bat_text, "{name}: summary must not depend on the eval mode");

        std::fs::remove_dir_all(&seq_dir).ok();
        std::fs::remove_dir_all(&bat_dir).ok();
    }
}

#[test]
fn shipped_fig3_spec_file_is_the_builtin_campaign() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../specs/fig3a_bench.toml");
    let text = std::fs::read_to_string(path).expect("specs/fig3a_bench.toml ships in the repo");
    let from_file = Scenario::from_toml(&text).expect("parses");
    let builtin = registry::builtin("fig3a", Scale::Bench).expect("built-in");
    assert_eq!(from_file, builtin, "the shipped spec must drive the exact Fig. 3a campaign");
}

#[test]
fn shipped_drone_dynamic_spec_file_is_the_builtin_campaign() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../specs/drone_dynamic_smoke.toml");
    let text =
        std::fs::read_to_string(path).expect("specs/drone_dynamic_smoke.toml ships in the repo");
    let from_file = Scenario::from_toml(&text).expect("parses");
    let builtin = registry::builtin("drone-dynamic", Scale::Smoke).expect("built-in");
    assert_eq!(from_file, builtin, "the shipped spec must drive the exact drone-dynamic campaign");
}

#[test]
fn shipped_drone_motion_spec_file_is_the_builtin_campaign() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../specs/drone_motion_smoke.toml");
    let text =
        std::fs::read_to_string(path).expect("specs/drone_motion_smoke.toml ships in the repo");
    let from_file = Scenario::from_toml(&text).expect("parses");
    let builtin = registry::builtin("drone-motion", Scale::Smoke).expect("built-in");
    assert_eq!(from_file, builtin, "the shipped spec must drive the exact drone-motion campaign");
    // The explicit motion reaches the expanded trials.
    match &builtin.expand().expect("expands").trials {
        frlfi_campaign::Trials::Drone(t) => assert!(t.iter().all(|t| {
            t.motion == Some(frlfi::envs::ObstacleMotion { amplitude: 3.0, period: 16.0 })
        })),
        _ => panic!("drone campaign expected"),
    }
}

#[test]
fn fig5a_drone_campaign_reproduces_the_figure_driver() {
    let scenario = registry::builtin("fig5a", Scale::Smoke).expect("built-in");
    let dir = temp_dir("fig5a");
    let out = runner::run(&scenario, &dir, &RunnerConfig::default()).expect("runs");
    let table = out.table.expect("complete");
    let driver = frlfi::experiments::fig5::agent_faults(Scale::Smoke);
    for (r, (_, driver_row)) in driver.rows.iter().enumerate() {
        for (c, &v) in driver_row.iter().enumerate() {
            assert_eq!(
                table.value(r, c).to_bits(),
                v.to_bits(),
                "cell ({r}, {c}) differs from experiments::fig5"
            );
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn campaign_cli_runs_interrupts_and_resumes() {
    let exe = env!("CARGO_BIN_EXE_campaign");
    let dir = temp_dir("cli");
    let spec_path =
        std::env::temp_dir().join(format!("frlfi-cli-spec-{}.toml", std::process::id()));
    std::fs::write(&spec_path, cheap_grid_scenario("cli-test").to_toml()).expect("write spec");

    let run = |args: &[&str]| {
        let out = std::process::Command::new(exe).args(args).output().expect("spawn campaign");
        (
            out.status.success(),
            String::from_utf8_lossy(&out.stdout).into_owned()
                + &String::from_utf8_lossy(&out.stderr),
        )
    };

    let (ok, listing) = run(&["list"]);
    assert!(ok, "{listing}");
    assert!(listing.contains("fig3a") && listing.contains("grid-dropout"), "{listing}");
    assert!(listing.contains("drone-dynamic") && listing.contains("drone-dropout"), "{listing}");
    // Grouped by system, with no stale "NEW:" markers.
    assert!(listing.contains("GridWorld:") && listing.contains("DroneNav:"), "{listing}");
    assert!(!listing.contains("NEW:"), "{listing}");

    let (ok, expanded) = run(&["expand", "--all", "--scale", "smoke"]);
    assert!(ok, "{expanded}");
    for e in registry::entries() {
        assert!(expanded.contains(e.name), "expand --all must cover {}: {expanded}", e.name);
    }
    let (ok, one) = run(&["expand", "drone-dropout", "--scale", "smoke"]);
    assert!(ok, "{one}");
    assert!(one.contains("4 cells × 1 repeats = 4 trials"), "{one}");
    let (ok, err) = run(&["expand", "no-such-builtin"]);
    assert!(!ok);
    assert!(err.contains("neither a file nor a built-in"), "{err}");
    let (ok, err) = run(&["expand", "fig3a", "--all"]);
    assert!(!ok, "a target and --all together must be rejected: {err}");
    let (ok, err) = run(&["run", "fig3a", "--all"]);
    assert!(!ok);
    assert!(err.contains("only valid with"), "{err}");

    let dir_s = dir.to_str().expect("utf8 tmp");
    let spec_s = spec_path.to_str().expect("utf8 tmp");
    let (ok, first) = run(&["run", spec_s, "--out", dir_s, "--max-trials", "2", "--threads", "2"]);
    assert!(ok, "{first}");
    assert!(first.contains("incomplete"), "{first}");

    let (ok, resumed) = run(&["resume", dir_s]);
    assert!(ok, "{resumed}");
    assert!(resumed.contains("Campaign cli-test"), "{resumed}");
    assert!(std::fs::read_to_string(dir.join("summary.txt")).is_ok());

    let (ok, err) = run(&["run", "no-such-builtin"]);
    assert!(!ok);
    assert!(err.contains("neither a file nor a built-in"), "{err}");

    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_file(&spec_path).ok();
}

/// The acceptance check at bench scale (minutes of runtime): run with
/// `cargo test -p frlfi-campaign --release -- --ignored`.
#[test]
#[ignore = "bench-scale acceptance run; minutes of runtime"]
fn fig3a_campaign_reproduces_fig3_at_bench_scale_with_interrupt() {
    let scenario = registry::builtin("fig3a", Scale::Bench).expect("built-in");
    let driver = fig3::agent_faults(Scale::Bench);

    // Interrupted + resumed campaign.
    let dir = temp_dir("fig3a-bench");
    runner::run(
        &scenario,
        &dir,
        &RunnerConfig { threads: 0, max_new_trials: Some(10), ..RunnerConfig::default() },
    )
    .expect("first leg");
    let out = runner::run(&scenario, &dir, &RunnerConfig::default()).expect("resume");
    let table = out.table.expect("complete");
    for (r, (_, driver_row)) in driver.rows.iter().enumerate() {
        for (c, &v) in driver_row.iter().enumerate() {
            assert_eq!(table.value(r, c).to_bits(), v.to_bits(), "cell ({r}, {c})");
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}
