//! Multi-process coordination guarantees, pinned against the real CLI:
//!
//! * N worker processes sharing one campaign directory produce a
//!   `summary.txt` **byte-identical** to the single-process,
//!   single-thread run;
//! * SIGKILLing a worker mid-flight loses nothing: its stale leases
//!   are reaped, its trials re-run bitwise-identically, and the final
//!   artifacts are unchanged;
//! * the shared-queue mode is bit-identical to the exclusive runner
//!   in-process too, per-observation and `--batched` alike.

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use frlfi::Scale;
use frlfi_campaign::{runner, CoordConfig, CoordMode, RunnerConfig, Scenario, SystemKind};

fn cli() -> &'static str {
    env!("CARGO_BIN_EXE_campaign")
}

fn temp_dir(tag: &str) -> PathBuf {
    static N: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "frlfi-multiproc-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A grid campaign cheap enough for CI but with enough trials that
/// several processes genuinely overlap.
fn scenario(name: &str) -> Scenario {
    let mut s = Scenario::new(name, SystemKind::GridWorld, Scale::Smoke);
    s.fault.bers = vec![0.0, 0.1, 0.2];
    s.fault.inject_episodes = vec![100];
    s.train.total_episodes = Some(300);
    s.repeats = Some(4);
    s
}

fn write_spec(name: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("frlfi-mp-{name}-{}.toml", std::process::id()));
    std::fs::write(&path, scenario(name).to_toml()).expect("write spec");
    path
}

/// Runs the CLI to completion, returning (success, combined output).
fn run_cli(args: &[&str]) -> (bool, String) {
    let out = Command::new(cli()).args(args).output().expect("spawn campaign CLI");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned() + &String::from_utf8_lossy(&out.stderr),
    )
}

fn spawn_cli(args: &[&str]) -> Child {
    Command::new(cli())
        .args(args)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn campaign CLI")
}

fn wait_output(child: Child, what: &str) -> String {
    let out = child.wait_with_output().expect("wait for CLI");
    let text =
        String::from_utf8_lossy(&out.stdout).into_owned() + &String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "{what} failed:\n{text}");
    text
}

fn wait_for(what: &str, timeout: Duration, mut ready: impl FnMut() -> bool) {
    let start = Instant::now();
    while !ready() {
        assert!(start.elapsed() < timeout, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Parses the trailing "(N new)" out of the CLI's outcome line.
fn new_trials(output: &str) -> usize {
    output
        .lines()
        .find_map(|l| {
            let (_, rest) = l.split_once("trials done (")?;
            rest.split_once(" new)")?.0.parse().ok()
        })
        .unwrap_or_else(|| panic!("no outcome line in output:\n{output}"))
}

fn summary(dir: &Path) -> String {
    std::fs::read_to_string(dir.join("summary.txt"))
        .unwrap_or_else(|e| panic!("summary.txt in {}: {e}", dir.display()))
}

/// Single-process, single-thread reference run — the bytes every
/// multi-process configuration must reproduce.
fn reference_summary(name: &str) -> String {
    let dir = temp_dir(&format!("{name}-ref"));
    let out =
        runner::run(&scenario(name), &dir, &RunnerConfig { threads: 1, ..RunnerConfig::default() })
            .expect("reference run");
    assert!(out.complete());
    let text = summary(&dir);
    std::fs::remove_dir_all(&dir).ok();
    text
}

#[test]
fn three_worker_processes_match_the_single_process_run_byte_for_byte() {
    let reference = reference_summary("mp3");
    let spec = write_spec("mp3");
    let dir = temp_dir("mp3");
    let dir_s = dir.to_str().expect("utf8");

    // Process 1 opens the campaign in shared mode; processes 2 and 3
    // join it as workers once the manifest exists — one of them on the
    // batched path, because modes mix freely inside one campaign.
    let first = spawn_cli(&[
        "run",
        spec.to_str().expect("utf8"),
        "--out",
        dir_s,
        "--shared",
        "--threads",
        "1",
        "--worker-id",
        "p1",
    ]);
    wait_for("campaign manifest", Duration::from_secs(30), || dir.join("campaign.toml").exists());
    let second = spawn_cli(&["worker", dir_s, "--threads", "1", "--worker-id", "p2"]);
    let third = spawn_cli(&["worker", dir_s, "--threads", "1", "--batched", "--worker-id", "p3"]);

    let outputs = [
        wait_output(first, "shared run"),
        wait_output(second, "worker p2"),
        wait_output(third, "worker p3"),
    ];
    assert_eq!(summary(&dir), reference, "multi-process summary.txt must be byte-identical");
    let total: usize = outputs.iter().map(|o| new_trials(o)).sum();
    assert_eq!(total, 12, "the processes must split exactly the campaign's trials: {outputs:?}");

    // The claim log shows the campaign was genuinely shared work.
    let claims = std::fs::read_to_string(dir.join("claims.jsonl")).expect("claims.jsonl");
    assert!(claims.contains("\"p1\""), "opener must have claimed through the log");

    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_file(&spec).ok();
}

#[test]
fn two_processes_share_a_drone_builtin_campaign_byte_for_byte() {
    // The drone analogue of the grid tests (acceptance criterion:
    // multi-process bit-equality for at least one grid *and* one
    // drone builtin): the real `drone-dynamic` smoke campaign, split
    // between two processes with one of them SIGKILLed mid-flight,
    // against the exclusive single-thread run. Each process resolves
    // the shared pre-trained weights independently — deterministically,
    // so the split cannot show.
    let scenario =
        frlfi_campaign::registry::builtin("drone-dynamic", Scale::Smoke).expect("built-in");
    let ref_dir = temp_dir("drone-ref");
    let out =
        runner::run(&scenario, &ref_dir, &RunnerConfig { threads: 1, ..RunnerConfig::default() })
            .expect("reference run");
    assert!(out.complete());
    let reference = summary(&ref_dir);

    let dir = temp_dir("drone-mp");
    let dir_s = dir.to_str().expect("utf8");
    let mut victim = spawn_cli(&[
        "run",
        "drone-dynamic",
        "--scale",
        "smoke",
        "--out",
        dir_s,
        "--shared",
        "--threads",
        "1",
        "--lease-ms",
        "600",
        "--worker-id",
        "victim",
    ]);
    wait_for("first committed drone trial", Duration::from_secs(120), || {
        dir.join("trials.jsonl").metadata().map(|m| m.len() > 0).unwrap_or(false)
    });
    victim.kill().expect("SIGKILL victim");
    victim.wait().expect("reap victim");

    let a =
        spawn_cli(&["worker", dir_s, "--lease-ms", "600", "--threads", "1", "--worker-id", "a"]);
    let b = spawn_cli(&[
        "worker",
        dir_s,
        "--lease-ms",
        "600",
        "--threads",
        "1",
        "--batched",
        "--worker-id",
        "b",
    ]);
    let out_a = wait_output(a, "drone worker a");
    let out_b = wait_output(b, "drone worker b");
    assert_eq!(summary(&dir), reference, "drone multi-process summary must be byte-identical");
    assert!(
        new_trials(&out_a) + new_trials(&out_b) > 0,
        "survivors must finish the victim's work:\n{out_a}\n{out_b}"
    );

    std::fs::remove_dir_all(&ref_dir).ok();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sigkilled_worker_is_reaped_and_the_campaign_still_matches_byte_for_byte() {
    let reference = reference_summary("mpkill");
    let spec = write_spec("mpkill");
    let dir = temp_dir("mpkill");
    let dir_s = dir.to_str().expect("utf8");

    // The victim opens the campaign with a short lease and is
    // SIGKILLed as soon as it has committed its first trial — dying
    // with a live lease on the next one and (likely) a torn tail.
    let mut victim = spawn_cli(&[
        "run",
        spec.to_str().expect("utf8"),
        "--out",
        dir_s,
        "--shared",
        "--threads",
        "1",
        "--lease-ms",
        "600",
        "--worker-id",
        "victim",
    ]);
    wait_for("first committed trial", Duration::from_secs(60), || {
        dir.join("trials.jsonl").metadata().map(|m| m.len() > 0).unwrap_or(false)
    });
    victim.kill().expect("SIGKILL victim");
    victim.wait().expect("reap victim");

    // Two replacement workers finish the campaign: they must wait out
    // the victim's stale lease, re-claim its trial at the next
    // generation, and re-run it bitwise-identically.
    let a =
        spawn_cli(&["worker", dir_s, "--lease-ms", "600", "--threads", "1", "--worker-id", "a"]);
    let b =
        spawn_cli(&["worker", dir_s, "--lease-ms", "600", "--threads", "1", "--worker-id", "b"]);
    let out_a = wait_output(a, "worker a");
    let out_b = wait_output(b, "worker b");

    assert_eq!(summary(&dir), reference, "kill + reap must not change a byte of summary.txt");
    let survivors = new_trials(&out_a) + new_trials(&out_b);
    assert!(survivors > 0, "survivors must have picked up the victim's work:\n{out_a}\n{out_b}");

    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_file(&spec).ok();
}

#[test]
fn worker_requires_an_existing_campaign_and_status_reports_progress() {
    let dir = temp_dir("status");
    let dir_s = dir.to_str().expect("utf8");

    let (ok, err) = run_cli(&["worker", dir_s]);
    assert!(!ok, "worker must refuse a directory with no campaign");
    assert!(err.contains("--shared"), "the error should teach the join flow: {err}");

    // Open the campaign exclusively and stop after 2 of 12 trials.
    let spec = write_spec("status");
    let (ok, out) =
        run_cli(&["run", spec.to_str().expect("utf8"), "--out", dir_s, "--max-trials", "2"]);
    assert!(ok, "{out}");
    let (ok, st) = run_cli(&["status", dir_s]);
    assert!(ok, "{st}");
    assert!(st.contains("2/12 trials done"), "{st}");
    assert!(st.contains("3 cells × 4 repeats"), "{st}");
    assert!(st.contains("summary.txt: pending"), "{st}");

    // A budgeted shared-mode call executes exactly its budget and
    // returns without waiting on anyone.
    let (ok, out) = run_cli(&["worker", dir_s, "--max-trials", "3", "--threads", "2"]);
    assert!(ok, "{out}");
    assert_eq!(new_trials(&out), 3, "{out}");
    let (ok, st) = run_cli(&["status", dir_s]);
    assert!(ok, "{st}");
    assert!(st.contains("5/12 trials done"), "{st}");

    // Finish and confirm the terminal status.
    let (ok, out) = run_cli(&["worker", dir_s, "--threads", "2"]);
    assert!(ok, "{out}");
    let (ok, st) = run_cli(&["status", dir_s]);
    assert!(ok, "{st}");
    assert!(st.contains("12/12 trials done (100%)"), "{st}");
    assert!(st.contains("summary.txt: written"), "{st}");

    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_file(&spec).ok();
}

#[test]
fn shared_mode_is_bit_identical_to_exclusive_in_process() {
    let scenario = scenario("inproc");
    let ref_dir = temp_dir("inproc-ref");
    let reference =
        runner::run(&scenario, &ref_dir, &RunnerConfig { threads: 1, ..RunnerConfig::default() })
            .expect("reference");
    let ref_stats = reference.stats.expect("complete");

    for batched in [false, true] {
        let dir = temp_dir("inproc-shared");
        let out = runner::run(
            &scenario,
            &dir,
            &RunnerConfig {
                threads: 3,
                batched,
                coord: CoordMode::Shared(CoordConfig::default()),
                ..RunnerConfig::default()
            },
        )
        .expect("shared run");
        assert!(out.complete());
        let stats = out.stats.expect("complete");
        assert_eq!(stats.len(), ref_stats.len());
        for (s, r) in stats.iter().zip(ref_stats.iter()) {
            assert_eq!(s.mean.to_bits(), r.mean.to_bits(), "batched={batched}");
            assert_eq!(s.std.to_bits(), r.std.to_bits(), "batched={batched}");
        }
        assert_eq!(summary(&dir), summary(&ref_dir), "batched={batched}");
        std::fs::remove_dir_all(&dir).ok();
    }
    std::fs::remove_dir_all(&ref_dir).ok();
}

#[test]
fn shared_mode_skips_corrupt_interior_records_and_reruns_them() {
    let scenario = scenario("lenient");
    let ref_dir = temp_dir("lenient-ref");
    runner::run(&scenario, &ref_dir, &RunnerConfig { threads: 1, ..RunnerConfig::default() })
        .expect("reference");

    // Complete a campaign, then mangle one interior record — the
    // healed-torn-tail shape a SIGKILLed concurrent writer leaves.
    let dir = temp_dir("lenient");
    runner::run(&scenario, &dir, &RunnerConfig { threads: 2, ..RunnerConfig::default() })
        .expect("first pass");
    let log = dir.join("trials.jsonl");
    let text = std::fs::read_to_string(&log).expect("log");
    let mut lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 12);
    lines[4] = "{\"cell\":1,\"repe"; // torn fragment, interior position
    std::fs::write(&log, lines.join("\n") + "\n").expect("mangle");

    // Exclusive resume refuses (interior damage under one writer is a
    // real integrity problem) and names the line...
    let err = runner::run(&scenario, &dir, &RunnerConfig::default()).expect_err("strict refuses");
    assert!(err.contains("line 5"), "{err}");

    // ...while a shared-queue worker skips it with a warning and
    // re-runs the lost trial to the identical summary.
    let out = runner::run(
        &scenario,
        &dir,
        &RunnerConfig {
            threads: 2,
            coord: CoordMode::Shared(CoordConfig::default()),
            ..RunnerConfig::default()
        },
    )
    .expect("lenient shared resume");
    assert!(out.complete());
    assert_eq!(out.new_trials, 1, "exactly the mangled trial re-runs");
    assert_eq!(summary(&dir), summary(&ref_dir));

    // The directory now has shared history (claims.jsonl exists), so
    // even an *exclusive* resume reads leniently: a legitimate
    // campaign must stay resumable solo after a shared worker healed
    // a dead process's torn tail into an interior line.
    let text = std::fs::read_to_string(&log).expect("log");
    let mut lines: Vec<&str> = text.lines().collect();
    lines[7] = "{\"cell\":2,\"repe";
    std::fs::write(&log, lines.join("\n") + "\n").expect("mangle again");
    let out = runner::run(&scenario, &dir, &RunnerConfig::default())
        .expect("exclusive resume of a shared-history campaign is lenient");
    assert!(out.complete());
    assert_eq!(out.new_trials, 1, "the re-mangled trial re-runs");
    assert_eq!(summary(&dir), summary(&ref_dir));

    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&ref_dir).ok();
}

#[test]
fn negative_trial_indices_are_rejected_as_corrupt_records() {
    // `cell` / `repeat` are array indices; before the range check an
    // unchecked `as usize` cast wrapped a negative value from a corrupt
    // `trials.jsonl` into a huge index and panicked (or worse, aliased
    // another cell) deep inside the runner. The loader must instead
    // reject the record like any other corrupt line, naming file+line.
    let mut scenario = scenario("neg-index");
    scenario.fault.bers = vec![0.1];
    scenario.repeats = Some(2);
    let dir = temp_dir("neg-index");
    runner::run(&scenario, &dir, &RunnerConfig { threads: 1, ..RunnerConfig::default() })
        .expect("first pass");
    let log = dir.join("trials.jsonl");
    let pristine = std::fs::read_to_string(&log).expect("log");
    assert_eq!(pristine.lines().count(), 2);

    for field in ["cell", "repeat"] {
        // Interior corruption (line 1 of 2): strict exclusive resume
        // must refuse, naming the file, the line, and the field.
        let mut lines: Vec<String> = pristine.lines().map(String::from).collect();
        assert!(lines[0].contains(&format!("\"{field}\":0")), "fixture drifted: {}", lines[0]);
        lines[0] = lines[0].replace(&format!("\"{field}\":0"), &format!("\"{field}\":-3"));
        std::fs::write(&log, lines.join("\n") + "\n").expect("mangle");
        let err =
            runner::run(&scenario, &dir, &RunnerConfig::default()).expect_err("strict refuses");
        assert!(err.contains("trials.jsonl"), "error must name the file: {err}");
        assert!(err.contains("line 1"), "error must name the line: {err}");
        assert!(err.contains(field) && err.contains("-3"), "error must name the field: {err}");

        // A shared-queue worker treats it like any other corrupt line:
        // skip with a warning, re-run the lost trial, same summary.
        let out = runner::run(
            &scenario,
            &dir,
            &RunnerConfig {
                coord: CoordMode::Shared(CoordConfig::default()),
                ..RunnerConfig::default()
            },
        )
        .expect("lenient shared resume");
        assert!(out.complete());
        assert_eq!(out.new_trials, 1, "exactly the corrupt trial re-runs");

        // Reset to a pristine exclusive-history directory for the next
        // field (shared history would make later resumes lenient).
        std::fs::remove_dir_all(&dir).ok();
        runner::run(&scenario, &dir, &RunnerConfig { threads: 1, ..RunnerConfig::default() })
            .expect("fresh pass");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn shared_mode_rejects_the_wide_summary_flag() {
    // With several finalizer processes carrying different flags, a
    // per-call rendering option would make summary.txt depend on
    // which process renames last — shared mode refuses it up front.
    let dir = temp_dir("wide-shared");
    let err = runner::run(
        &scenario("wide-shared"),
        &dir,
        &RunnerConfig {
            wide_summary: true,
            coord: CoordMode::Shared(CoordConfig::default()),
            ..RunnerConfig::default()
        },
    )
    .expect_err("shared + wide must be rejected");
    assert!(err.contains("--wide"), "{err}");
    std::fs::remove_dir_all(&dir).ok();
}

/// Distinct trial ids mentioned anywhere in `claims.jsonl` — claimed,
/// renewed or reaped.
fn claimed_trials(dir: &Path) -> usize {
    let text = std::fs::read_to_string(dir.join("claims.jsonl")).unwrap_or_default();
    let mut trials: Vec<&str> = text
        .lines()
        .filter_map(|l| l.split_once("\"trial\":")?.1.split(|c: char| !c.is_ascii_digit()).next())
        .collect();
    trials.sort_unstable();
    trials.dedup();
    trials.len()
}

#[test]
fn stalled_heartbeat_is_reaped_and_the_thawed_worker_changes_nothing() {
    let reference = reference_summary("mpstall");
    let spec = write_spec("mpstall");
    let dir = temp_dir("mpstall");
    let dir_s = dir.to_str().expect("utf8");

    // The victim opens the campaign with a short lease and is
    // SIGSTOPped once it holds a lease on a trial it has not yet
    // committed: the process is alive but every thread — heartbeat
    // included — is frozen. From the claim log this is exactly what a
    // dead heartbeat thread looks like: a claim that stops renewing
    // while its worker silently stalls.
    let victim = spawn_cli(&[
        "run",
        spec.to_str().expect("utf8"),
        "--out",
        dir_s,
        "--shared",
        "--threads",
        "1",
        "--lease-ms",
        "600",
        "--worker-id",
        "victim",
    ]);
    wait_for("a committed trial plus an in-flight lease", Duration::from_secs(60), || {
        let committed = std::fs::read_to_string(dir.join("trials.jsonl"))
            .map(|t| t.lines().count())
            .unwrap_or(0);
        committed >= 1 && claimed_trials(&dir) > committed
    });
    let pid = victim.id().to_string();
    let stopped = Command::new("kill").args(["-STOP", &pid]).status().expect("send SIGSTOP");
    assert!(stopped.success(), "SIGSTOP victim");

    // A healthy worker must wait out the stalled lease, reap it at
    // generation g+1, re-run the victim's in-flight trial and finish
    // the campaign.
    let a =
        spawn_cli(&["worker", dir_s, "--lease-ms", "600", "--threads", "1", "--worker-id", "a"]);
    let out_a = wait_output(a, "worker a");
    assert!(new_trials(&out_a) > 0, "the survivor must have picked up work:\n{out_a}");
    assert_eq!(summary(&dir), reference, "reaping a stalled worker must not change a byte");
    let claims = std::fs::read_to_string(dir.join("claims.jsonl")).expect("claims.jsonl");
    assert!(
        claims.contains("\"gen\":1"),
        "the stalled lease must be reaped at the next generation: {claims}"
    );

    // Thaw the victim: it wakes mid-trial with the campaign already
    // complete, commits its trial anyway — a duplicate record, which
    // must be bitwise-identical and therefore harmless — and exits
    // cleanly. The summary stays byte-identical through the overlap.
    let thawed = Command::new("kill").args(["-CONT", &pid]).status().expect("send SIGCONT");
    assert!(thawed.success(), "SIGCONT victim");
    wait_output(victim, "thawed victim");
    assert_eq!(summary(&dir), reference, "the thawed victim must not change a byte either");

    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_file(&spec).ok();
}

#[test]
fn pathological_lease_settings_are_rejected_before_any_disk_writes() {
    let spec = write_spec("lease");
    let dir = temp_dir("lease");
    let dir_s = dir.to_str().expect("utf8");

    // Below the minimum, the heartbeat cadence cannot keep the lease
    // alive: the worker would reap itself. The CLI rejects the flag
    // with the typed config error before touching the directory.
    for lease in ["50", "0"] {
        let (ok, err) = run_cli(&[
            "run",
            spec.to_str().expect("utf8"),
            "--out",
            dir_s,
            "--shared",
            "--lease-ms",
            lease,
        ]);
        assert!(!ok, "--lease-ms {lease} must be rejected");
        assert!(err.contains("--lease-ms"), "{err}");
        assert!(err.contains("below the minimum"), "{err}");
    }
    assert!(!dir.exists(), "validation must fire before any disk writes");

    let (ok, err) = run_cli(&["worker", dir_s, "--lease-ms", "100"]);
    assert!(!ok, "the worker path must validate too");
    assert!(err.contains("below the minimum"), "{err}");

    std::fs::remove_file(&spec).ok();
}
