/// Fault-injection points of one communication round.
///
/// The paper considers three fault sources — server, communication and
/// agent (§III-C) — and groups them into *agent faults* (faults in the
/// data the server receives: agent memory + agent→server channel) and
/// *server faults* (faults in the data agents receive: server memory +
/// server→agent channel). A `RoundHook` exposes exactly those surfaces:
///
/// * [`RoundHook::on_uplink`] — corrupt an agent's upload (agent-side);
/// * [`RoundHook::on_server`] — corrupt the aggregated parameter sets in
///   server memory before they are sent (server-side);
/// * [`RoundHook::on_downlink`] — corrupt one agent's download
///   (server-side, channel).
///
/// The default implementations do nothing, so hooks only override the
/// surfaces they target.
pub trait RoundHook: Send {
    /// Called on each agent's parameters as they arrive at the server.
    fn on_uplink(&mut self, _agent: usize, _params: &mut [f32]) {}

    /// Called once on the full set of aggregated outputs (index = agent)
    /// while they sit in server memory.
    fn on_server(&mut self, _outputs: &mut [Vec<f32>]) {}

    /// Called on each agent's parameters as they arrive back at the
    /// agent.
    fn on_downlink(&mut self, _agent: usize, _params: &mut [f32]) {}
}

/// A hook that never corrupts anything (fault-free rounds).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopHook;

impl RoundHook for NoopHook {}

#[cfg(test)]
mod tests {
    use super::*;

    struct CountingHook {
        uplinks: usize,
        servers: usize,
        downlinks: usize,
    }

    impl RoundHook for CountingHook {
        fn on_uplink(&mut self, _agent: usize, _params: &mut [f32]) {
            self.uplinks += 1;
        }
        fn on_server(&mut self, _outputs: &mut [Vec<f32>]) {
            self.servers += 1;
        }
        fn on_downlink(&mut self, _agent: usize, _params: &mut [f32]) {
            self.downlinks += 1;
        }
    }

    #[test]
    fn default_methods_are_noops() {
        let mut h = NoopHook;
        let mut p = vec![1.0, 2.0];
        h.on_uplink(0, &mut p);
        h.on_downlink(0, &mut p);
        h.on_server(&mut [vec![3.0]]);
        assert_eq!(p, vec![1.0, 2.0]);
    }

    #[test]
    fn custom_hook_sees_all_phases() {
        let mut h = CountingHook { uplinks: 0, servers: 0, downlinks: 0 };
        let mut p = vec![0.0];
        h.on_uplink(0, &mut p);
        h.on_uplink(1, &mut p);
        h.on_server(&mut [vec![0.0]]);
        h.on_downlink(0, &mut p);
        assert_eq!((h.uplinks, h.servers, h.downlinks), (2, 1, 1));
    }
}
