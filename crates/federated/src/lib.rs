//! # frlfi-federated
//!
//! Federated-learning substrate for the FRL-FI reproduction.
//!
//! Implements the paper's FRL parameter exchange (§III-A): after each
//! communication round every agent `i` uploads its policy `θᵢᵏ⁻` and the
//! server returns the smoothing average
//!
//! ```text
//! θᵢᵏ⁺ = αₖ·θᵢᵏ⁻ + βₖ·Σ_{j≠i} θⱼᵏ⁻ ,   βₖ = (1 − αₖ)/(n − 1)
//! ```
//!
//! with `αₖ, βₖ → 1/n` as training proceeds (the consensus guarantee of
//! the paper's Eq. 4). The crate also provides:
//!
//! * [`RoundHook`] — the three fault-injection points of a communication
//!   round (uplink, server, downlink), matching the paper's grouping of
//!   fault locations into *agent faults* and *server faults* (§III-C);
//! * [`CommSchedule`] — the communication-interval schedule of Fig. 6b,
//!   including the ×2/×3 interval increase after a switch episode and
//!   the communication-cost accounting behind the paper's −23.3% figure.
//!
//! ```
//! use frlfi_federated::Server;
//!
//! # fn main() -> Result<(), frlfi_federated::FederatedError> {
//! let mut server = Server::new(3, 4)?;
//! let uploads = vec![vec![1.0; 4], vec![2.0; 4], vec![3.0; 4]];
//! let downloads = server.aggregate(&uploads)?;
//! assert_eq!(downloads.len(), 3);
//! // Every smoothed policy moves toward the mean of the uploads.
//! assert!(downloads[0][0] > 1.0 && downloads[0][0] < 3.0);
//! # Ok(())
//! # }
//! ```

mod error;
mod hook;
mod schedule;
mod server;

pub use error::FederatedError;
pub use hook::{NoopHook, RoundHook};
pub use schedule::CommSchedule;
pub use server::Server;
