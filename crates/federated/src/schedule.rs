/// The server–agent communication-interval schedule (Fig. 6b).
///
/// The interval is the number of episodes between communication rounds.
/// The paper's experiment doubles or triples the interval after the
/// 2000th episode ("drones usually perform more exploitation" late in
/// fine-tuning) and reports the resulting trade-off: longer intervals
/// cut communication cost (−23.3% for ×3) and server-fault exposure but
/// slow recovery from agent faults.
///
/// ```
/// use frlfi_federated::CommSchedule;
///
/// let s = CommSchedule::with_boost(1, 2000, 3);
/// assert!(s.communicates_at(10));
/// assert_eq!(s.interval_at(2500), 3);
/// assert!(!s.communicates_at(2501));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommSchedule {
    base_interval: usize,
    switch_episode: Option<usize>,
    late_multiplier: usize,
}

impl CommSchedule {
    /// Communicate every `base_interval` episodes for the whole run.
    ///
    /// # Panics
    ///
    /// Panics if `base_interval == 0`.
    pub fn every(base_interval: usize) -> Self {
        assert!(base_interval > 0, "interval must be positive");
        CommSchedule { base_interval, switch_episode: None, late_multiplier: 1 }
    }

    /// Communicate every `base_interval` episodes until
    /// `switch_episode`, then every `base_interval × multiplier`.
    ///
    /// # Panics
    ///
    /// Panics if `base_interval == 0` or `multiplier == 0`.
    pub fn with_boost(base_interval: usize, switch_episode: usize, multiplier: usize) -> Self {
        assert!(base_interval > 0 && multiplier > 0, "interval and multiplier must be positive");
        CommSchedule {
            base_interval,
            switch_episode: Some(switch_episode),
            late_multiplier: multiplier,
        }
    }

    /// The interval in force at a given episode.
    pub fn interval_at(&self, episode: usize) -> usize {
        match self.switch_episode {
            Some(sw) if episode >= sw => self.base_interval * self.late_multiplier,
            _ => self.base_interval,
        }
    }

    /// Whether a communication round happens after this episode.
    pub fn communicates_at(&self, episode: usize) -> bool {
        episode.is_multiple_of(self.interval_at(episode))
    }

    /// Total communication rounds over `total_episodes` episodes.
    pub fn total_comms(&self, total_episodes: usize) -> usize {
        (0..total_episodes).filter(|&e| self.communicates_at(e)).count()
    }

    /// Fractional communication-cost saving versus an unboosted schedule
    /// (the paper reports 23.3% for ×3 after episode 2000 of 3000).
    pub fn cost_saving_vs_base(&self, total_episodes: usize) -> f64 {
        let base = CommSchedule::every(self.base_interval).total_comms(total_episodes);
        if base == 0 {
            return 0.0;
        }
        1.0 - self.total_comms(total_episodes) as f64 / base as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_schedule() {
        let s = CommSchedule::every(5);
        assert_eq!(s.interval_at(0), 5);
        assert_eq!(s.interval_at(10_000), 5);
        assert_eq!(s.total_comms(50), 10);
    }

    #[test]
    fn boost_switches_interval() {
        let s = CommSchedule::with_boost(1, 100, 2);
        assert_eq!(s.interval_at(99), 1);
        assert_eq!(s.interval_at(100), 2);
        assert!(s.communicates_at(50));
        assert!(s.communicates_at(102));
        assert!(!s.communicates_at(101));
    }

    #[test]
    fn paper_cost_saving_shape() {
        // ×3 after episode 2000 of 3000: the last 1000 episodes send
        // 1/3 the messages → saving ≈ (1000 − 334)/3000 ≈ 22%.
        let s = CommSchedule::with_boost(1, 2000, 3);
        let saving = s.cost_saving_vs_base(3000);
        assert!((0.20..=0.25).contains(&saving), "saving {saving}");
    }

    #[test]
    #[should_panic]
    fn zero_interval_panics() {
        CommSchedule::every(0);
    }
}
