use crate::{FederatedError, RoundHook};

/// The FRL parameter server (§III-A).
///
/// Holds the consensus parameter vector and performs the smoothing
/// average `θᵢᵏ⁺ = αₖ·θᵢᵏ⁻ + βₖ·Σ_{j≠i} θⱼᵏ⁻`. The self-weight `αₖ`
/// anneals from its initial value toward `1/n`, the fixed point that
/// guarantees consensus (paper Eq. 4, citing Zeng et al.).
///
/// The server's stored consensus is the state the checkpointing scheme
/// (§V-A) snapshots and restores.
#[derive(Debug, Clone, PartialEq)]
pub struct Server {
    n_agents: usize,
    consensus: Vec<f32>,
    round: usize,
    alpha0: f32,
    anneal_rounds: usize,
}

impl Server {
    /// Creates a server for `n_agents` agents exchanging `param_len`
    /// parameters, with the default α₀ = 0.5 annealed over 50 rounds.
    ///
    /// # Errors
    ///
    /// Returns [`FederatedError::TooFewAgents`] if `n_agents < 2` or
    /// [`FederatedError::EmptyParams`] if `param_len == 0`.
    pub fn new(n_agents: usize, param_len: usize) -> Result<Self, FederatedError> {
        Server::with_annealing(n_agents, param_len, 0.5, 50)
    }

    /// Creates a server with an explicit `α₀` and annealing horizon.
    ///
    /// # Errors
    ///
    /// As for [`Server::new`]; additionally requires `1/n ≤ α₀ ≤ 1`.
    pub fn with_annealing(
        n_agents: usize,
        param_len: usize,
        alpha0: f32,
        anneal_rounds: usize,
    ) -> Result<Self, FederatedError> {
        if n_agents < 2 {
            return Err(FederatedError::TooFewAgents { n_agents });
        }
        if param_len == 0 {
            return Err(FederatedError::EmptyParams);
        }
        let floor = 1.0 / n_agents as f32;
        assert!((floor..=1.0).contains(&alpha0), "alpha0 {alpha0} must lie in [1/n, 1]");
        Ok(Server { n_agents, consensus: vec![0.0; param_len], round: 0, alpha0, anneal_rounds })
    }

    /// Number of participating agents.
    pub fn n_agents(&self) -> usize {
        self.n_agents
    }

    /// Completed aggregation rounds.
    pub fn round(&self) -> usize {
        self.round
    }

    /// Current self-weight `αₖ`, annealing linearly from α₀ to `1/n`.
    pub fn alpha(&self) -> f32 {
        let floor = 1.0 / self.n_agents as f32;
        if self.anneal_rounds == 0 || self.round >= self.anneal_rounds {
            return floor;
        }
        let frac = self.round as f32 / self.anneal_rounds as f32;
        self.alpha0 + (floor - self.alpha0) * frac
    }

    /// The server's consensus copy (mean of the last uploads).
    pub fn consensus(&self) -> &[f32] {
        &self.consensus
    }

    /// Mutable access to the consensus copy — the server-memory fault
    /// surface and the checkpoint restore target.
    pub fn consensus_mut(&mut self) -> &mut [f32] {
        &mut self.consensus
    }

    /// Performs one aggregation round without fault hooks.
    ///
    /// # Errors
    ///
    /// Returns an error if the number or length of uploads is wrong.
    pub fn aggregate(&mut self, uploads: &[Vec<f32>]) -> Result<Vec<Vec<f32>>, FederatedError> {
        let mut uploads = uploads.to_vec();
        self.aggregate_with_hook(&mut uploads, &mut crate::NoopHook)
    }

    /// Performs one aggregation round, applying a [`RoundHook`] at the
    /// uplink, server-memory, and downlink fault surfaces.
    ///
    /// Uploads are taken by mutable reference because the uplink hook
    /// corrupts them *in transit* — the agents' own copies are not
    /// affected (matching a communication fault rather than an
    /// agent-memory fault).
    ///
    /// # Errors
    ///
    /// Returns an error if the number or length of uploads is wrong.
    pub fn aggregate_with_hook(
        &mut self,
        uploads: &mut [Vec<f32>],
        hook: &mut dyn RoundHook,
    ) -> Result<Vec<Vec<f32>>, FederatedError> {
        if uploads.len() != self.n_agents {
            return Err(FederatedError::WrongUploadCount {
                expected: self.n_agents,
                actual: uploads.len(),
            });
        }
        let len = self.consensus.len();
        for (i, u) in uploads.iter().enumerate() {
            if u.len() != len {
                return Err(FederatedError::ParamLengthMismatch {
                    agent: i,
                    expected: len,
                    actual: u.len(),
                });
            }
        }

        for (i, u) in uploads.iter_mut().enumerate() {
            hook.on_uplink(i, u);
        }

        // Sum of all uploads (after any uplink corruption).
        let mut sum = vec![0.0f32; len];
        for u in uploads.iter() {
            for (s, &v) in sum.iter_mut().zip(u.iter()) {
                *s += v;
            }
        }
        // Consensus = mean of uploads; this is what the server "knows".
        let inv_n = 1.0 / self.n_agents as f32;
        for (c, &s) in self.consensus.iter_mut().zip(sum.iter()) {
            *c = s * inv_n;
        }

        let alpha = self.alpha();
        let beta = (1.0 - alpha) / (self.n_agents as f32 - 1.0);
        let mut outputs: Vec<Vec<f32>> = uploads
            .iter()
            .map(|u| {
                u.iter()
                    .zip(sum.iter())
                    .map(|(&own, &total)| alpha * own + beta * (total - own))
                    .collect()
            })
            .collect();

        hook.on_server(&mut outputs);
        for (i, o) in outputs.iter_mut().enumerate() {
            hook.on_downlink(i, o);
        }

        self.round += 1;
        Ok(outputs)
    }

    /// Performs one aggregation round over a *subset* of agents — the
    /// agent-dropout scenario, where unreliable links keep some agents
    /// out of a communication round.
    ///
    /// `participants[i]` marks whether agent `i` uploads this round.
    /// Dropped agents neither contribute to nor receive the smoothing
    /// average (their slot in the result is `None`); the self-weight is
    /// floored at `1/m` for the `m` participants so the update stays a
    /// valid convex combination. If fewer than two agents participate
    /// the round is skipped entirely (no aggregation, round counter
    /// unchanged) and all slots are `None`.
    ///
    /// # Errors
    ///
    /// Returns an error if the number or length of uploads is wrong, or
    /// if the mask length differs from the agent count.
    pub fn aggregate_subset(
        &mut self,
        uploads: &mut [Vec<f32>],
        participants: &[bool],
        hook: &mut dyn RoundHook,
    ) -> Result<Vec<Option<Vec<f32>>>, FederatedError> {
        if uploads.len() != self.n_agents || participants.len() != self.n_agents {
            return Err(FederatedError::WrongUploadCount {
                expected: self.n_agents,
                actual: uploads.len().min(participants.len()),
            });
        }
        let len = self.consensus.len();
        for (i, u) in uploads.iter().enumerate() {
            if u.len() != len {
                return Err(FederatedError::ParamLengthMismatch {
                    agent: i,
                    expected: len,
                    actual: u.len(),
                });
            }
        }
        let m = participants.iter().filter(|&&p| p).count();
        if m < 2 {
            return Ok(vec![None; self.n_agents]);
        }

        for (i, u) in uploads.iter_mut().enumerate() {
            if participants[i] {
                hook.on_uplink(i, u);
            }
        }

        let mut sum = vec![0.0f32; len];
        for (i, u) in uploads.iter().enumerate() {
            if participants[i] {
                for (s, &v) in sum.iter_mut().zip(u.iter()) {
                    *s += v;
                }
            }
        }
        let inv_m = 1.0 / m as f32;
        for (c, &s) in self.consensus.iter_mut().zip(sum.iter()) {
            *c = s * inv_m;
        }

        let alpha = self.alpha().max(inv_m);
        let beta = (1.0 - alpha) / (m as f32 - 1.0);
        let mut dense: Vec<Vec<f32>> = uploads
            .iter()
            .enumerate()
            .filter(|(i, _)| participants[*i])
            .map(|(_, u)| {
                u.iter()
                    .zip(sum.iter())
                    .map(|(&own, &total)| alpha * own + beta * (total - own))
                    .collect()
            })
            .collect();

        hook.on_server(&mut dense);
        let mut dense_iter = dense.into_iter();
        let mut outputs: Vec<Option<Vec<f32>>> =
            participants.iter().map(|&p| if p { dense_iter.next() } else { None }).collect();
        for (i, o) in outputs.iter_mut().enumerate() {
            if let Some(o) = o.as_mut() {
                hook.on_downlink(i, o);
            }
        }

        self.round += 1;
        Ok(outputs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_construction() {
        assert!(matches!(Server::new(1, 4), Err(FederatedError::TooFewAgents { .. })));
        assert!(matches!(Server::new(4, 0), Err(FederatedError::EmptyParams)));
    }

    #[test]
    fn rejects_bad_uploads() {
        let mut s = Server::new(2, 3).unwrap();
        assert!(matches!(
            s.aggregate(&[vec![0.0; 3]]),
            Err(FederatedError::WrongUploadCount { .. })
        ));
        assert!(matches!(
            s.aggregate(&[vec![0.0; 3], vec![0.0; 2]]),
            Err(FederatedError::ParamLengthMismatch { agent: 1, .. })
        ));
    }

    #[test]
    fn identical_uploads_are_fixed_point() {
        let mut s = Server::new(3, 2).unwrap();
        let uploads = vec![vec![1.5, -0.5]; 3];
        let out = s.aggregate(&uploads).unwrap();
        for o in out {
            assert!((o[0] - 1.5).abs() < 1e-6);
            assert!((o[1] + 0.5).abs() < 1e-6);
        }
    }

    #[test]
    fn smoothing_moves_toward_mean() {
        let mut s = Server::new(2, 1).unwrap();
        let out = s.aggregate(&[vec![0.0], vec![2.0]]).unwrap();
        // Each output strictly between own value and the other's.
        assert!(out[0][0] > 0.0 && out[0][0] < 2.0);
        assert!(out[1][0] > 0.0 && out[1][0] < 2.0);
        // Weights sum to one, so the pair mean is preserved.
        assert!((out[0][0] + out[1][0] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn alpha_anneals_to_one_over_n() {
        let mut s = Server::with_annealing(4, 1, 0.7, 10).unwrap();
        assert!((s.alpha() - 0.7).abs() < 1e-6);
        for _ in 0..10 {
            s.aggregate(&vec![vec![0.0]; 4]).unwrap();
        }
        assert!((s.alpha() - 0.25).abs() < 1e-6);
    }

    #[test]
    fn consensus_is_mean_of_uploads() {
        let mut s = Server::new(2, 2).unwrap();
        s.aggregate(&[vec![1.0, 3.0], vec![3.0, 5.0]]).unwrap();
        assert_eq!(s.consensus(), &[2.0, 4.0]);
    }

    #[test]
    fn repeated_rounds_converge_to_consensus() {
        // The paper's Eq. 4: θᵢᵏ⁺ → θ* for all i.
        let mut s = Server::with_annealing(3, 1, 0.8, 20).unwrap();
        let mut params = vec![vec![0.0f32], vec![6.0], vec![3.0]];
        for _ in 0..60 {
            params = s.aggregate(&params).unwrap();
        }
        let spread = params.iter().map(|p| p[0]).fold(f32::NEG_INFINITY, f32::max)
            - params.iter().map(|p| p[0]).fold(f32::INFINITY, f32::min);
        assert!(spread < 1e-3, "agents did not converge, spread {spread}");
        assert!((params[0][0] - 3.0).abs() < 1e-3, "consensus should preserve the mean");
    }

    #[test]
    fn uplink_hook_corrupts_in_transit_only() {
        struct ZeroAgent0;
        impl RoundHook for ZeroAgent0 {
            fn on_uplink(&mut self, agent: usize, params: &mut [f32]) {
                if agent == 0 {
                    params.iter_mut().for_each(|p| *p = 0.0);
                }
            }
        }
        let mut s = Server::new(2, 1).unwrap();
        let mut uploads = vec![vec![10.0], vec![2.0]];
        let out = s.aggregate_with_hook(&mut uploads, &mut ZeroAgent0).unwrap();
        // Server saw 0.0 for agent 0, so outputs reflect the corruption.
        assert!(out[1][0] < 2.0);
    }

    #[test]
    fn subset_round_matches_full_round_when_all_participate() {
        let uploads = vec![vec![1.0f32, -2.0], vec![0.5, 4.0], vec![-1.0, 0.0]];
        let mut full = Server::new(3, 2).unwrap();
        let expected = full.aggregate(&uploads).unwrap();
        let mut subset = Server::new(3, 2).unwrap();
        let mut ups = uploads.clone();
        let got =
            subset.aggregate_subset(&mut ups, &[true, true, true], &mut crate::NoopHook).unwrap();
        for (e, g) in expected.iter().zip(got.iter()) {
            assert_eq!(e, g.as_ref().unwrap());
        }
        assert_eq!(full.consensus(), subset.consensus());
    }

    #[test]
    fn dropped_agents_get_no_output() {
        let mut s = Server::new(3, 1).unwrap();
        let mut ups = vec![vec![0.0f32], vec![6.0], vec![100.0]];
        let out = s.aggregate_subset(&mut ups, &[true, true, false], &mut crate::NoopHook).unwrap();
        assert!(out[0].is_some() && out[1].is_some());
        assert!(out[2].is_none());
        // Consensus is the mean over participants only.
        assert!((s.consensus()[0] - 3.0).abs() < 1e-6);
        assert_eq!(s.round(), 1);
    }

    #[test]
    fn lonely_round_is_skipped() {
        let mut s = Server::new(3, 1).unwrap();
        let mut ups = vec![vec![1.0f32]; 3];
        let out =
            s.aggregate_subset(&mut ups, &[true, false, false], &mut crate::NoopHook).unwrap();
        assert!(out.iter().all(Option::is_none));
        assert_eq!(s.round(), 0, "skipped rounds must not advance annealing");
    }

    #[test]
    fn subset_rejects_bad_mask() {
        let mut s = Server::new(3, 1).unwrap();
        let mut ups = vec![vec![1.0f32]; 3];
        assert!(s.aggregate_subset(&mut ups, &[true, true], &mut crate::NoopHook).is_err());
    }

    #[test]
    fn server_hook_hits_all_agents() {
        struct Saturate;
        impl RoundHook for Saturate {
            fn on_server(&mut self, outputs: &mut [Vec<f32>]) {
                for o in outputs {
                    o.iter_mut().for_each(|p| *p = 99.0);
                }
            }
        }
        let mut s = Server::new(3, 2).unwrap();
        let mut uploads = vec![vec![0.0; 2]; 3];
        let out = s.aggregate_with_hook(&mut uploads, &mut Saturate).unwrap();
        assert!(out.iter().all(|o| o.iter().all(|&p| p == 99.0)));
    }
}
