use std::error::Error;
use std::fmt;

/// Errors produced by the federated parameter exchange.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FederatedError {
    /// A server was created with fewer than two agents (a single-agent
    /// system has no server, per the paper's Fig. 3c baseline).
    TooFewAgents {
        /// Requested agent count.
        n_agents: usize,
    },
    /// A zero-length parameter vector was requested.
    EmptyParams,
    /// An aggregation round received the wrong number of uploads.
    WrongUploadCount {
        /// Expected number of agent uploads.
        expected: usize,
        /// Received number.
        actual: usize,
    },
    /// An upload's parameter length does not match the server's.
    ParamLengthMismatch {
        /// Agent index with the mismatched upload.
        agent: usize,
        /// Expected parameter count.
        expected: usize,
        /// Received parameter count.
        actual: usize,
    },
}

impl fmt::Display for FederatedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FederatedError::TooFewAgents { n_agents } => {
                write!(f, "federated server needs at least 2 agents, got {n_agents}")
            }
            FederatedError::EmptyParams => write!(f, "parameter vector must be non-empty"),
            FederatedError::WrongUploadCount { expected, actual } => {
                write!(f, "expected {expected} agent uploads, got {actual}")
            }
            FederatedError::ParamLengthMismatch { agent, expected, actual } => {
                write!(f, "agent {agent} uploaded {actual} params, server expects {expected}")
            }
        }
    }
}

impl Error for FederatedError {}
