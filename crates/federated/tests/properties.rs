//! Property-based tests for the federated exchange.

use frlfi_federated::{CommSchedule, Server};
use proptest::prelude::*;

proptest! {
    #[test]
    fn aggregation_preserves_mean(
        n in 2usize..8,
        len in 1usize..16,
        scale in -10.0f32..10.0,
    ) {
        let mut server = Server::new(n, len).expect("server");
        let uploads: Vec<Vec<f32>> =
            (0..n).map(|i| vec![scale * i as f32; len]).collect();
        let mean: f32 = uploads.iter().map(|u| u[0]).sum::<f32>() / n as f32;
        let out = server.aggregate(&uploads).expect("aggregate");
        let out_mean: f32 = out.iter().map(|o| o[0]).sum::<f32>() / n as f32;
        prop_assert!((mean - out_mean).abs() < 1e-3 * (1.0 + mean.abs()),
            "smoothing must preserve the fleet mean: {} vs {}", mean, out_mean);
    }

    #[test]
    fn outputs_within_upload_hull(n in 2usize..8, vals in proptest::collection::vec(-100.0f32..100.0, 2..8)) {
        prop_assume!(vals.len() >= n);
        let mut server = Server::new(n, 1).expect("server");
        let uploads: Vec<Vec<f32>> = (0..n).map(|i| vec![vals[i]]).collect();
        let lo = uploads.iter().map(|u| u[0]).fold(f32::INFINITY, f32::min);
        let hi = uploads.iter().map(|u| u[0]).fold(f32::NEG_INFINITY, f32::max);
        let out = server.aggregate(&uploads).expect("aggregate");
        for o in out {
            prop_assert!(o[0] >= lo - 1e-4 && o[0] <= hi + 1e-4,
                "smoothed value {} escapes hull [{}, {}]", o[0], lo, hi);
        }
    }

    #[test]
    fn repeated_rounds_contract_spread(n in 2usize..6, seedvals in proptest::collection::vec(-10.0f32..10.0, 2..6)) {
        prop_assume!(seedvals.len() >= n);
        let mut server = Server::new(n, 1).expect("server");
        let mut params: Vec<Vec<f32>> = (0..n).map(|i| vec![seedvals[i]]).collect();
        let spread = |p: &[Vec<f32>]| {
            p.iter().map(|v| v[0]).fold(f32::NEG_INFINITY, f32::max)
                - p.iter().map(|v| v[0]).fold(f32::INFINITY, f32::min)
        };
        let s0 = spread(&params);
        for _ in 0..5 {
            params = server.aggregate(&params).expect("aggregate");
        }
        prop_assert!(spread(&params) <= s0 + 1e-4, "aggregation must not widen the spread");
    }

    #[test]
    fn alpha_always_in_valid_range(n in 2usize..16, rounds in 0usize..200) {
        let mut server = Server::new(n, 1).expect("server");
        let uploads = vec![vec![0.0f32]; n];
        for _ in 0..rounds.min(60) {
            server.aggregate(&uploads).expect("aggregate");
        }
        let a = server.alpha();
        prop_assert!(a >= 1.0 / n as f32 - 1e-6 && a <= 1.0);
    }

    #[test]
    fn schedule_total_comms_bounded(base in 1usize..8, total in 1usize..500) {
        let s = CommSchedule::every(base);
        let comms = s.total_comms(total);
        prop_assert!(comms <= total);
        prop_assert!(comms >= total / base);
    }

    #[test]
    fn boosted_schedule_never_costs_more(base in 1usize..4, switch in 0usize..300, mult in 2usize..5, total in 1usize..400) {
        let plain = CommSchedule::every(base).total_comms(total);
        let boosted = CommSchedule::with_boost(base, switch, mult).total_comms(total);
        prop_assert!(boosted <= plain);
    }
}
