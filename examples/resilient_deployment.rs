//! Design-space walkthrough for deploying an FRL policy on a real
//! drone: pick a number format that matches the weight range (§IV-B-3)
//! and a protection scheme the platform can afford (Fig. 9).
//!
//! ```text
//! cargo run -p frlfi --release --example resilient_deployment
//! ```

use frlfi::fault::{Ber, FaultModel};
use frlfi::mitigation::{DronePlatform, ProtectionScheme};
use frlfi::quant::QFormat;
use frlfi::{GridFrlSystem, GridSystemConfig, ReprKind};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== Step 1: pick a fixed-point format for the policy ==");
    let mut sys = GridFrlSystem::new(GridSystemConfig {
        n_agents: 4,
        seed: 3,
        epsilon_decay_episodes: 200,
        ..Default::default()
    })?;
    sys.train(400, None, None)?;
    let ber = Ber::new(2e-4)?;
    for q in [QFormat::Q4_11, QFormat::Q7_8, QFormat::Q10_5] {
        // Average over injection seeds: a single campaign is noisy.
        let mut sr = 0.0;
        for seed in 0..12u64 {
            sr += sys.with_faulted_policies(
                FaultModel::TransientMulti,
                ber,
                ReprKind::Fixed(q),
                seed,
                |s| s.success_rate() * 100.0,
            );
        }
        println!("  {q}: SR under BER 2e-4 = {:.0}%  (range ±{:.1})", sr / 12.0, q.max_value());
    }
    println!("  -> narrow formats that just cover the weight range survive best\n");

    println!("== Step 2: pick a protection scheme for the airframe ==");
    for platform in [DronePlatform::airsim(), DronePlatform::dji_spark()] {
        println!("  {}:", platform.name);
        for scheme in ProtectionScheme::all() {
            let r = platform.evaluate(scheme);
            println!(
                "    {:<18} {:>6.1} m  ({:>5.1}% degradation)",
                scheme.to_string(),
                r.distance_m,
                r.degradation_percent()
            );
        }
    }
    println!("\n  -> redundancy (DMR/TMR) is affordable on the mini-UAV but cripples");
    println!("     the micro-UAV; software range detection costs <3% on both.");
    Ok(())
}
