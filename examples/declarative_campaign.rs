//! Declarative campaign orchestration: describe a fault-injection
//! campaign as data, run it with resume support, and read the table.
//!
//! ```text
//! cargo run --release --example declarative_campaign
//! ```

use frlfi::Scale;
use frlfi_repro::campaign::{registry, runner, RunnerConfig, Scenario};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A campaign can come from the registry...
    let builtin = registry::builtin("fig3a", Scale::Smoke).expect("built-in scenario");
    println!("built-in fig3a spec:\n{}", builtin.to_toml());

    // 2. ...or from a TOML document (what `campaign run spec.toml` does).
    let spec = r#"
        name = "demo-dropout"
        system = "GridWorld"
        scale = "Smoke"
        repeats = 2

        [fleet]
        dropout = 0.2

        [fault]
        side = "Server"
        bers = [0.0, 0.1]
        inject_episodes = [40]
    "#;
    let scenario = Scenario::from_toml(spec)?;

    // 3. Run it. Interrupting and re-running the same call resumes from
    //    the JSONL trial log and yields bit-identical statistics.
    let dir = std::env::temp_dir().join("frlfi-demo-campaign");
    let out = runner::run(&scenario, &dir, &RunnerConfig::default())?;
    println!(
        "completed {}/{} trials ({} new this run)",
        out.completed_trials, out.total_trials, out.new_trials
    );
    println!("{}", out.table.expect("campaign complete").render());
    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
