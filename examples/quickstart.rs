//! Quickstart: build a federated GridWorld system, train it, inject a
//! transient server fault, and watch the mitigation scheme recover it.
//!
//! ```text
//! cargo run -p frlfi --release --example quickstart
//! ```

use frlfi::fault::Ber;
use frlfi::{GridFrlSystem, GridSystemConfig, InjectionPlan, TrainingMitigation};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Four agents, each in its own 10x10 maze, sharing a policy through
    // the smoothing-average server.
    let cfg = GridSystemConfig { n_agents: 4, seed: 13, ..Default::default() };

    println!("training a fault-free baseline...");
    let mut baseline = GridFrlSystem::new(cfg.clone())?;
    baseline.train(400, None, None)?;
    println!("  baseline success rate: {:.0}%", baseline.success_rate() * 100.0);

    // Now the same system, but a heavy transient fault strikes the
    // *server* at episode 390 — late enough that training has little
    // window left to repair the damage on its own.
    let plan = InjectionPlan::server(390, Ber::new(0.20)?);

    println!("training with an unmitigated server fault (BER 20%, episode 390)...");
    let mut faulty = GridFrlSystem::new(cfg.clone())?;
    faulty.train(400, Some(&plan), None)?;
    println!("  faulty success rate:   {:.0}%", faulty.success_rate() * 100.0);
    println!("  fault injected {} bit flips into server memory", faulty.last_fault_records().len());

    // Same fault, but with the paper's mitigation: reward-drop detection
    // plus server checkpointing every 5 communication rounds.
    println!("training with the fault AND checkpoint mitigation...");
    let mut mitigated = GridFrlSystem::new(cfg)?;
    mitigated.train(400, Some(&plan), Some(&TrainingMitigation::scaled(8)))?;
    println!("  mitigated success rate: {:.0}%", mitigated.success_rate() * 100.0);
    let stats = mitigated.mitigation_stats();
    println!(
        "  detector fired {} time(s) ({} attributed to the server)",
        stats.total(),
        stats.server_detections
    );

    Ok(())
}
