//! Drone-fleet scenario: pre-train a conv policy offline, fine-tune a
//! four-drone fleet federatedly, then compare inference under memory
//! faults with and without range-based anomaly detection.
//!
//! ```text
//! cargo run -p frlfi --release --example drone_patrol
//! ```

use frlfi::fault::{Ber, FaultModel};
use frlfi::mitigation::RangeDetector;
use frlfi::rl::Learner;
use frlfi::{DroneFrlSystem, DroneSystemConfig, ReprKind};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg =
        DroneSystemConfig { n_drones: 4, seed: 11, pretrain_episodes: 30, ..Default::default() };
    let mut fleet = DroneFrlSystem::new(cfg)?;

    println!("offline pre-training (REINFORCE)...");
    fleet.pretrain()?;
    println!("federated online fine-tuning (4 drones)...");
    fleet.fine_tune(25, None, None)?;
    let clean = fleet.safe_flight_distance(3);
    println!("  clean safe flight distance: {clean:.0} m");

    // Tally per-layer weight ranges before deployment (the paper's
    // range-based detector, fit on the healthy policy).
    let detectors: Vec<RangeDetector> =
        (0..fleet.n_drones()).map(|i| RangeDetector::fit(fleet.drone(i).network())).collect();

    let ber = Ber::new(1e-2)?;
    let unprotected =
        fleet.with_faulted_policies(FaultModel::TransientMulti, ber, ReprKind::F32, 99, |f| {
            f.safe_flight_distance(3)
        });
    println!("  with BER 1e-2 memory faults:  {unprotected:.0} m");

    let protected =
        fleet.with_faulted_policies(FaultModel::TransientMulti, ber, ReprKind::F32, 99, |f| {
            let mut repaired = 0;
            for (i, det) in detectors.iter().enumerate() {
                repaired += det.repair(f.drone_mut(i).network_mut());
            }
            println!("  range detector repaired {repaired} anomalous weights");
            f.safe_flight_distance(3)
        });
    println!("  with range-based detection:   {protected:.0} m");
    if unprotected > 0.0 {
        println!("  improvement: {:.2}x", protected / unprotected);
    }
    Ok(())
}
