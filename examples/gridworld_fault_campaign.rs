//! A custom fault-injection campaign built directly on the campaign
//! engine: sweep (BER × fault model) over inference faults and print a
//! resilience table — the pattern to copy when designing experiments
//! the paper didn't run.
//!
//! ```text
//! cargo run -p frlfi --release --example gridworld_fault_campaign
//! ```

use frlfi::fault::{sweep, Ber, FaultModel};
use frlfi::report::Table;
use frlfi::{GridFrlSystem, GridSystemConfig, ReprKind};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Train the system once; the campaign then corrupts copies of its
    // deployed (int8-quantized) policy.
    println!("training the policy under test...");
    let cfg = GridSystemConfig {
        n_agents: 4,
        seed: 21,
        epsilon_decay_episodes: 200,
        ..Default::default()
    };
    let mut sys = GridFrlSystem::new(cfg)?;
    sys.train(400, None, None)?;
    println!("  clean success rate: {:.0}%\n", sys.success_rate() * 100.0);
    let clean_weights: Vec<Vec<f32>> =
        (0..4).map(|i| frlfi::rl::Learner::network(sys.agent(i)).snapshot()).collect();

    let bers = [0.0, 0.005, 0.01, 0.02, 0.05];
    let models = [FaultModel::TransientMulti, FaultModel::StuckAt0, FaultModel::StuckAt1];
    let cells: Vec<(f64, FaultModel)> =
        bers.iter().flat_map(|&b| models.iter().map(move |&m| (b, m))).collect();

    // Each campaign task rebuilds the trained system from the saved
    // weights (cheap) and evaluates one corrupted deployment.
    let stats = sweep(&cells, 8, 0xCA3D, |&(ber, model), seed| {
        let cfg = GridSystemConfig {
            n_agents: 4,
            seed: 21,
            epsilon_decay_episodes: 200,
            ..Default::default()
        };
        let mut sys = GridFrlSystem::new(cfg).expect("valid config");
        for (i, w) in clean_weights.iter().enumerate() {
            frlfi::rl::Learner::network_mut(sys.agent_mut(i)).restore(w).expect("weights fit");
        }
        sys.with_faulted_policies(
            model,
            Ber::new(ber).expect("valid ber"),
            ReprKind::Int8,
            seed,
            |s| s.success_rate() * 100.0,
        )
    });

    let mut table = Table::new(
        "Custom campaign: SR (%) by fault model",
        "BER",
        models.iter().map(|m| m.to_string()).collect(),
    );
    for (bi, &ber) in bers.iter().enumerate() {
        let row = (0..models.len()).map(|mi| stats[bi * models.len() + mi].mean).collect();
        table.push_row(format!("{:.1}%", ber * 100.0), row);
    }
    println!("{table}");
    println!("(stuck-at-1 should dominate stuck-at-0: trained policies are mostly 0-bits)");
    Ok(())
}
