//! Workspace façade crate.
//!
//! Exists so the repository root is a package: the end-to-end suites in
//! `tests/` and the runnable `examples/` hang off it. Downstream code
//! should depend on [`frlfi`] (systems + experiments) and
//! [`frlfi_campaign`] (declarative campaign orchestration) directly;
//! both are re-exported here for convenience.

pub use frlfi;
pub use frlfi_campaign as campaign;
